//! Measurement-calibrated algorithm selection.
//!
//! The §5.3 selector is only as good as its machine model: a static
//! preset (`CostModel::aries()` etc.) prices every candidate analytically
//! and can mis-pick whenever the preset's α/β don't match the actual
//! link. [`ObservedCostModel`] closes the loop: every `Auto` collective
//! that runs through a calibrated communicator reports its measured
//! duration back here, keyed by `(algorithm, size-class)`, and selection
//! switches from the preset's predictions to the measured medians once
//! each candidate has warmed up — with an EWMA-fitted effective α/β
//! standing in for regimes that have no measurements yet.
//!
//! Cross-rank determinism: measured durations differ across ranks, so a
//! locally-measured pick could diverge and deadlock the schedule. The
//! `Auto` path therefore runs one extra 1-byte agreement round on
//! calibrated picks (see `allreduce::resolve_auto`) — every rank
//! proposes its pick, the minimum candidate index wins everywhere.

use std::collections::HashMap;
use std::sync::Mutex;

use sparcml_net::CostModel;
use sparcml_obs::{LatencyHisto, LatencyRegistry};
use sparcml_stream::Scalar;

use crate::allreduce::Algorithm;
use crate::bounds::Workload;
use crate::selector::{expected_cost, flat_candidates};
use crate::theory::expected_union_size;

/// Tunables for [`ObservedCostModel`].
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// EWMA weight of the newest sample in the per-key running mean and
    /// the α/β fit statistics (`0 < ewma <= 1`; higher adapts faster).
    pub ewma: f64,
    /// Measurements required per candidate per size class before
    /// selection trusts the measured means; until then candidates are
    /// explored round-robin.
    pub warmup_samples: u64,
}

impl Default for CalibrationConfig {
    fn default() -> CalibrationConfig {
        CalibrationConfig {
            ewma: 0.25,
            warmup_samples: 2,
        }
    }
}

/// Decayed sufficient statistics of the least-squares system
/// `t ≈ α·A(w) + β·B(w)` over all recorded calls, where `A`/`B` are the
/// candidate's analytic cost evaluated under unit-α and unit-β models.
#[derive(Debug, Clone, Copy, Default)]
struct FitStats {
    saa: f64,
    sab: f64,
    sbb: f64,
    sat: f64,
    sbt: f64,
    n: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// EWMA mean duration (seconds) per `(algorithm, size-class)`.
    means: HashMap<(Algorithm, u8), (f64, u64)>,
    fit: FitStats,
}

/// An EWMA-calibrated wrapper over [`CostModel`]: records measured
/// per-algorithm durations, fits effective α/β, and selects among the
/// §5.3 candidate set by measurement instead of preset once warm.
///
/// Thread-safe; shared between a [`crate::Communicator`] and its
/// collectives via `Arc` (see [`crate::AllreduceConfig::calibration`]).
pub struct ObservedCostModel {
    base: CostModel,
    cfg: CalibrationConfig,
    histos: LatencyRegistry,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ObservedCostModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedCostModel")
            .field("base", &self.base)
            .field("cfg", &self.cfg)
            .field("fitted", &self.fitted())
            .finish()
    }
}

impl ObservedCostModel {
    /// A fresh calibrator over `base` (the preset used until — and
    /// wherever — measurements exist).
    pub fn new(base: CostModel) -> ObservedCostModel {
        ObservedCostModel::with_config(base, CalibrationConfig::default())
    }

    /// [`ObservedCostModel::new`] with explicit tunables.
    pub fn with_config(base: CostModel, cfg: CalibrationConfig) -> ObservedCostModel {
        ObservedCostModel {
            base,
            cfg,
            histos: LatencyRegistry::new(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The preset this calibrator started from.
    pub fn base(&self) -> &CostModel {
        &self.base
    }

    /// Record one measured collective: `algo` ran a `p`-rank reduction of
    /// `n`-dim vectors with `k` non-zeros per rank in `seconds`.
    pub fn record<V: Scalar>(&self, algo: Algorithm, p: usize, n: usize, k: usize, seconds: f64) {
        if !(seconds.is_finite() && seconds >= 0.0) || algo.is_auto() {
            return;
        }
        let k = k.max(1);
        self.histos.record(algo.name(), "cal", k, seconds);
        let class = LatencyRegistry::size_class(k);
        let lam = self.cfg.ewma.clamp(1e-3, 1.0);
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.means.entry((algo, class)).or_insert((0.0, 0));
        if entry.1 == 0 {
            entry.0 = seconds;
        } else {
            entry.0 = (1.0 - lam) * entry.0 + lam * seconds;
        }
        entry.1 += 1;
        // Feed the α/β fit: subtract the γ (compute) share predicted by
        // the base model, then decay-accumulate the normal equations of
        // t' ≈ α·A + β·B.
        let w = Workload {
            p,
            n,
            k,
            value_bytes: V::BYTES,
        };
        let ek = expected_union_size(n, p, k.min(n));
        let a = expected_cost(algo, &w, &unit(self.base, 1.0, 0.0, 0.0), ek);
        let b = expected_cost(algo, &w, &unit(self.base, 0.0, 1.0, 0.0), ek);
        let g = expected_cost(algo, &w, &unit(self.base, 0.0, 0.0, 1.0), ek);
        let t = (seconds - self.base.gamma * g).max(0.0);
        if a.is_finite() && b.is_finite() {
            let f = &mut inner.fit;
            let d = 1.0 - lam;
            f.saa = d * f.saa + lam * a * a;
            f.sab = d * f.sab + lam * a * b;
            f.sbb = d * f.sbb + lam * b * b;
            f.sat = d * f.sat + lam * a * t;
            f.sbt = d * f.sbt + lam * b * t;
            f.n += 1;
        }
    }

    /// The effective machine model implied by the measurements: α/β from
    /// the decayed least-squares fit (γ and the isend fraction carried
    /// over from the base). Falls back to the base preset until at least
    /// two calls have been recorded or while the system is degenerate
    /// (e.g. all measurements from one algorithm at one size).
    pub fn fitted(&self) -> CostModel {
        let fit = self.inner.lock().unwrap().fit;
        if fit.n < 2 {
            return self.base;
        }
        let det = fit.saa * fit.sbb - fit.sab * fit.sab;
        // Relative threshold: det degenerates when A and B are collinear
        // across every recorded call.
        if det.abs() <= 1e-9 * (fit.saa * fit.sbb).max(f64::MIN_POSITIVE) {
            // Rank-1 fallback: scale the base α/β jointly so the model
            // matches the measured magnitudes.
            let scale = if fit.saa > 0.0 && self.base.alpha > 0.0 {
                let s = fit.sat / fit.saa / self.base.alpha;
                if s.is_finite() {
                    s.max(0.0)
                } else {
                    1.0
                }
            } else {
                1.0
            };
            return CostModel {
                alpha: self.base.alpha * scale.max(1e-6),
                beta: self.base.beta * scale.max(1e-6),
                ..self.base
            };
        }
        let alpha = (fit.sat * fit.sbb - fit.sbt * fit.sab) / det;
        let beta = (fit.sbt * fit.saa - fit.sat * fit.sab) / det;
        if !(alpha.is_finite() && beta.is_finite()) {
            return self.base;
        }
        CostModel {
            // Negative coefficients mean the model family can't explain
            // the data yet; clamp to a sliver of the base instead of
            // predicting negative times.
            alpha: if alpha > 0.0 {
                alpha
            } else {
                self.base.alpha * 1e-3
            },
            beta: if beta > 0.0 {
                beta
            } else {
                self.base.beta * 1e-3
            },
            ..self.base
        }
    }

    /// Measurements recorded for `algo` in `k`'s size class.
    pub fn samples(&self, algo: Algorithm, k: usize) -> u64 {
        self.histos
            .count(algo.name(), "cal", LatencyRegistry::size_class(k.max(1)))
    }

    /// The EWMA mean measured duration of `algo` in `k`'s size class.
    pub fn measured_mean(&self, algo: Algorithm, k: usize) -> Option<f64> {
        let class = LatencyRegistry::size_class(k.max(1));
        self.inner
            .lock()
            .unwrap()
            .means
            .get(&(algo, class))
            .filter(|(_, n)| *n > 0)
            .map(|(m, _)| *m)
    }

    /// Measurement-first §5.3 selection among the workload's candidate
    /// regime (same candidate set as [`crate::select_algorithm`]):
    ///
    /// 1. *warm-up*: while any candidate has fewer than
    ///    `warmup_samples` measurements in this size class, return the
    ///    least-measured candidate (ties by candidate order) — forced
    ///    exploration, so the empirically best algorithm is actually
    ///    tried instead of only ever exploiting the prior;
    /// 2. *exploit*: once warm, return the candidate with the smallest
    ///    measured EWMA mean;
    /// 3. candidates without measurements (unreachable after warm-up)
    ///    are priced by the [`ObservedCostModel::fitted`] model.
    ///
    /// Deterministic given identical measurement histories; across ranks
    /// the `Auto` path adds a 1-byte agreement so divergent histories
    /// can't split the cluster's pick.
    pub fn select<V: Scalar>(&self, p: usize, n: usize, k: usize) -> Algorithm {
        let k = k.max(1);
        let candidates = flat_candidates::<V>(p, n, k);
        let explore = candidates
            .iter()
            .map(|&a| (self.samples(a, k), a))
            .min_by_key(|(count, _)| *count)
            .expect("candidate list non-empty");
        if explore.0 < self.cfg.warmup_samples {
            return explore.1;
        }
        let fitted = self.fitted();
        let w = Workload {
            p,
            n,
            k,
            value_bytes: V::BYTES,
        };
        let ek = expected_union_size(n, p, k.min(n));
        *candidates
            .iter()
            .min_by(|&&a, &&b| {
                let ta = self
                    .measured_mean(a, k)
                    .unwrap_or_else(|| expected_cost(a, &w, &fitted, ek));
                let tb = self
                    .measured_mean(b, k)
                    .unwrap_or_else(|| expected_cost(b, &w, &fitted, ek));
                ta.partial_cmp(&tb).expect("durations are finite")
            })
            .expect("candidate list non-empty")
    }

    /// Per-`(algorithm, size-class)` latency histograms (the measurement
    /// store behind selection), e.g. for a health endpoint.
    pub fn histograms(&self) -> Vec<((&'static str, &'static str, u8), LatencyHisto)> {
        self.histos.snapshot()
    }

    /// Human-readable calibration report: fitted model plus the measured
    /// latency table.
    pub fn report(&self) -> String {
        let fitted = self.fitted();
        format!(
            "calibration base alpha={:.3e} beta={:.3e} | fitted alpha={:.3e} beta={:.3e}\n{}",
            self.base.alpha,
            self.base.beta,
            fitted.alpha,
            fitted.beta,
            self.histos.render_text()
        )
    }
}

/// `base` with α/β/γ replaced (keeping `isend_alpha_fraction`), for
/// evaluating the analytic cost's pure-α / pure-β / pure-γ components.
fn unit(base: CostModel, alpha: f64, beta: f64, gamma: f64) -> CostModel {
    CostModel {
        alpha,
        beta,
        gamma,
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 8;
    const N: usize = 1 << 20;
    const K: usize = 100_000;

    #[test]
    fn warmup_explores_every_candidate_round_robin() {
        let cal = ObservedCostModel::new(CostModel::aries());
        let candidates = flat_candidates::<f32>(P, N, K);
        let mut seen = Vec::new();
        for _ in 0..candidates.len() * 2 {
            let pick = cal.select::<f32>(P, N, K);
            cal.record::<f32>(pick, P, N, K, 0.001);
            seen.push(pick);
        }
        for c in candidates {
            assert_eq!(
                seen.iter().filter(|&&s| s == *c).count(),
                2,
                "warm-up must visit {c:?} exactly warmup_samples times"
            );
        }
    }

    #[test]
    fn converges_to_measured_fastest_after_warmup() {
        let cal = ObservedCostModel::new(CostModel::aries());
        let candidates = flat_candidates::<f32>(P, N, K);
        // Feed synthetic measurements: the *last* candidate is fastest
        // (so preset order can't accidentally produce the right answer).
        let fastest = *candidates.last().unwrap();
        for _ in 0..3 {
            for &c in candidates {
                let t = if c == fastest { 0.001 } else { 0.010 };
                cal.record::<f32>(c, P, N, K, t);
            }
        }
        assert_eq!(cal.select::<f32>(P, N, K), fastest);
        // ...and it keeps picking it while measurements stay consistent.
        for _ in 0..5 {
            let pick = cal.select::<f32>(P, N, K);
            assert_eq!(pick, fastest);
            cal.record::<f32>(pick, P, N, K, 0.001);
        }
    }

    #[test]
    fn ewma_tracks_a_regime_change() {
        let cal = ObservedCostModel::with_config(
            CostModel::aries(),
            CalibrationConfig {
                ewma: 0.5,
                warmup_samples: 1,
            },
        );
        let candidates = flat_candidates::<f32>(P, N, K);
        let (a, b) = (candidates[0], candidates[1]);
        for &c in candidates {
            cal.record::<f32>(c, P, N, K, if c == a { 0.001 } else { 0.010 });
        }
        assert_eq!(cal.select::<f32>(P, N, K), a);
        // The link degrades for `a`: with ewma=0.5 a few bad samples
        // overtake the history.
        for _ in 0..6 {
            cal.record::<f32>(a, P, N, K, 0.100);
            cal.record::<f32>(b, P, N, K, 0.002);
        }
        assert_eq!(cal.select::<f32>(P, N, K), b);
    }

    #[test]
    fn fitted_recovers_alpha_beta_from_synthetic_times() {
        // Generate durations from a known machine model and check the
        // fit lands near it (γ = 0 keeps the check exact-ish).
        let truth = CostModel {
            alpha: 3e-5,
            beta: 2e-9,
            gamma: 0.0,
            ..CostModel::aries()
        };
        let base = CostModel {
            alpha: 1e-6, // wrong preset on purpose
            beta: 1e-10,
            gamma: 0.0,
            ..CostModel::aries()
        };
        let cal = ObservedCostModel::new(base);
        for k in [1 << 6, 1 << 10, 1 << 14, 1 << 17] {
            for &algo in flat_candidates::<f32>(P, N, k) {
                let w = Workload {
                    p: P,
                    n: N,
                    k,
                    value_bytes: 4,
                };
                let ek = expected_union_size(N, P, k);
                let t = expected_cost(algo, &w, &truth, ek);
                cal.record::<f32>(algo, P, N, k, t);
            }
        }
        let fitted = cal.fitted();
        assert!(
            (fitted.alpha / truth.alpha).log2().abs() < 1.0,
            "alpha {} vs truth {}",
            fitted.alpha,
            truth.alpha
        );
        assert!(
            (fitted.beta / truth.beta).log2().abs() < 1.0,
            "beta {} vs truth {}",
            fitted.beta,
            truth.beta
        );
    }

    #[test]
    fn unwarmed_model_falls_back_to_base() {
        let cal = ObservedCostModel::new(CostModel::gige());
        assert_eq!(cal.fitted(), CostModel::gige());
        assert_eq!(cal.samples(Algorithm::DenseRing, 1024), 0);
        assert_eq!(cal.measured_mean(Algorithm::DenseRing, 1024), None);
    }
}
