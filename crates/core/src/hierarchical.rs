//! The two-level topology-aware allreduce ([`Algorithm::Hierarchical`]).
//!
//! On a multi-node cluster the intra-node links are far faster than the
//! inter-node links (§5.2 takes different α–β parameters per class), so a
//! flat schedule wastes the cheap links: every round crosses the slow
//! ones. The hierarchical schedule keeps inter-node traffic to the
//! minimum — one flat allreduce among *node leaders* — and handles
//! everything else on-node:
//!
//! ```text
//!   node 0: r0 r1 r2 r3          node 1: r4 r5 r6 r7
//!            \ | | /                      \ | | /
//!   (1) intra-node sparse reduce → leader (binomial tree, intra links)
//!             r0  ◄────────────────────►  r4
//!   (2) leader-level flat sparse allreduce (any §5.3 schedule, inter links)
//!            / | | \                      / | | \
//!   (3) intra-node broadcast of the global sum (binomial tree)
//! ```
//!
//! Each phase runs an *existing* collective unchanged over a
//! [`GroupTransport`] subgroup view — the node group for (1) and (3), the
//! leader group for (2) — so correctness is inherited from the flat
//! implementations, and the leader-stage algorithm is chosen recursively
//! by the §5.3 selector with the leaders' own `P`, `k` and the inter-node
//! cost model (or pinned via
//! [`AllreduceConfig::hier_leader_algorithm`]).

use sparcml_net::{GroupTransport, Topology, TopologyCostModel, Transport};
use sparcml_obs as obs;
use sparcml_stream::{Scalar, SparseStream};

use crate::allreduce::{dispatch, dispatch_flat, Algorithm, AllreduceConfig};
use crate::error::CollError;
use crate::op::BufferPool;
use crate::rooted::{sparse_broadcast_pooled, sparse_reduce_pooled};

/// Two-level hierarchical allreduce. Resolves the node placement from
/// [`AllreduceConfig::topology`], falling back to the
/// `SPARCML_TOPOLOGY`/`SPARCML_NODES` environment and finally to a single
/// loopback node (under which the schedule degenerates to the flat
/// adaptive path).
pub fn hierarchical_allreduce<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    hierarchical_allreduce_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`hierarchical_allreduce`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn hierarchical_allreduce_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    // Borrow the configured topology; only the env-detect fallback
    // allocates (this runs once per collective call on the hot path).
    let detected;
    let topo: &Topology = match &cfg.topology {
        Some(t) => t,
        None => {
            detected = Topology::detect(p)?;
            &detected
        }
    };
    if topo.size() != p {
        return Err(CollError::Invalid(format!(
            "topology covers {} ranks but the communicator has {p}",
            topo.size()
        )));
    }
    if topo.is_trivial() {
        // One node (or one rank per node): there is no hierarchy to
        // exploit — run the flat adaptive path. `resolve_auto` cannot
        // bounce back here: a trivial topology never selects Hierarchical.
        return dispatch(ep, input, Algorithm::Auto, cfg, pool);
    }

    let rank = ep.rank();
    // Draw both tag scopes on *every* rank before any membership diverges,
    // keeping the base op-id counter rank-invariant (non-leaders never
    // construct the leader group, but must still account for its scope).
    let node_seq = ep.next_op_id();
    let lead_seq = ep.next_op_id();
    let group = topo.group_of(rank).to_vec();
    let leaders = topo.leaders();
    let is_leader = topo.is_leader(rank);
    let tcm = effective_topology_cost(ep, cfg)?;
    // Inner stages must not see the topology again (a leader-level Auto
    // re-selecting Hierarchical would recurse forever). Built field by
    // field so the topology itself is never cloned per call.
    let flat_cfg = AllreduceConfig {
        policy: cfg.policy,
        quant: cfg.quant,
        quant_seed: cfg.quant_seed,
        blocking_split_sends: cfg.blocking_split_sends,
        topology: None,
        topology_cost: None,
        hier_leader_algorithm: cfg.hier_leader_algorithm,
        // Inner stages run on subgroup transports whose sizes/costs differ
        // from the session's; calibrating on them would pollute the
        // whole-cluster fit. The outer dispatch still times the composite.
        calibration: None,
        adaptive: cfg.adaptive,
    };

    // The topology validated the groups, so the subgroup constructors
    // cannot fail; `expect` keeps the no-transport-loss invariant simple.
    let mut node = GroupTransport::with_scope(ep.detach(), group, node_seq)
        .expect("topology-derived node group is valid")
        .with_cost(tcm.intra);

    // Every fallible step reinstalls the base transport before returning,
    // so a failed phase leaves the communicator usable (and poisonable by
    // its own machinery) instead of silently holding a placeholder.
    macro_rules! bail_on_err {
        ($node:ident, $ep:ident, $result:expr) => {
            match $result {
                Ok(v) => v,
                Err(e) => {
                    *$ep = $node.into_parent();
                    return Err(e);
                }
            }
        };
    }

    // (1) Intra-node reduce: the node's sum lands at group rank 0 (the
    // leader); everyone else holds an empty stream of the right dimension.
    let reduced = {
        let _leg = obs::span(obs::Category::Phase, "hier-intra-reduce");
        bail_on_err!(
            node,
            ep,
            sparse_reduce_pooled(&mut node, input, 0, &flat_cfg, pool)
        )
    };

    // (2) Leader-level flat allreduce across nodes. The node view is
    // quiescent while its base is temporarily re-wrapped as the leader
    // group; non-leaders skip straight to the broadcast receive.
    let at_leader = if is_leader {
        let _leg = obs::span(obs::Category::Phase, "hier-leader-allreduce");
        let mut lead = GroupTransport::with_scope(node.parent_mut().detach(), leaders, lead_seq)
            .expect("topology-derived leader group is valid")
            .with_cost(tcm.inter);
        let summed = dispatch_flat(
            &mut lead,
            &reduced,
            cfg.hier_leader_algorithm,
            &flat_cfg,
            pool,
        );
        *node.parent_mut() = lead.into_parent();
        bail_on_err!(node, ep, summed)
    } else {
        reduced
    };

    // (3) Intra-node broadcast of the global sum from the leader.
    let out = {
        let _leg = obs::span(obs::Category::Phase, "hier-broadcast");
        bail_on_err!(
            node,
            ep,
            sparse_broadcast_pooled(&mut node, &at_leader, 0, pool)
        )
    };
    *ep = node.into_parent();
    Ok(out)
}

/// The link-class cost model in force for a call: the explicit
/// [`AllreduceConfig::topology_cost`], else the
/// `SPARCML_COST_MODEL`/`SPARCML_COST_MODEL_INTRA` environment overrides
/// layered over the transport's flat planning hint (an unset inter model
/// keeps the hint; an unset intra model takes the shared-memory default).
pub(crate) fn effective_topology_cost<T: Transport>(
    ep: &T,
    cfg: &AllreduceConfig,
) -> Result<TopologyCostModel, CollError> {
    if let Some(tcm) = cfg.topology_cost {
        return Ok(tcm);
    }
    Ok(TopologyCostModel::from_env_or_flat(*ep.cost())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_net::{run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    fn cfg_with(topo: Topology) -> AllreduceConfig {
        AllreduceConfig {
            topology: Some(topo),
            ..Default::default()
        }
    }

    #[test]
    fn two_by_four_matches_reference() {
        let p = 8;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(4096, 64, 7000 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let cfg = cfg_with(Topology::uniform(2, 4).unwrap());
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            hierarchical_allreduce(ep, &ins[ep.rank()], &cfg).unwrap()
        });
        for out in outs {
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn unequal_and_interleaved_nodes_work() {
        // Nodes {0,3,5}, {1,4}, {2}: non-uniform sizes, non-consecutive
        // ranks, one singleton node.
        let topo = Topology::from_groups(vec![vec![0, 3, 5], vec![1, 4], vec![2]]).unwrap();
        let p = 6;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(2000, 40, 7100 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let cfg = cfg_with(topo);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            hierarchical_allreduce(ep, &ins[ep.rank()], &cfg).unwrap()
        });
        for out in outs {
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn trivial_topology_falls_back_to_flat() {
        let p = 4;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(1024, 16, 7200 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        for topo in [Topology::single_node(p), Topology::uniform(p, 1).unwrap()] {
            let cfg = cfg_with(topo);
            let outs = run_cluster(p, CostModel::zero(), |ep| {
                hierarchical_allreduce(ep, &ins[ep.rank()], &cfg).unwrap()
            });
            for out in outs {
                for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                    assert!((g - e).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn pinned_leader_algorithm_is_honored_and_exact_on_integers() {
        // Integer-valued inputs: every schedule sums them exactly, so the
        // hierarchical result must be bitwise-identical to the reference.
        let p = 8;
        let dim = 512;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| {
                let pairs: Vec<(u32, f32)> = (0..24)
                    .map(|i| (((r * 37 + i * 11) % dim) as u32, (1 + r + i) as f32))
                    .collect();
                SparseStream::from_pairs(dim, &pairs).unwrap()
            })
            .collect();
        let expect = reference_sum(&ins);
        for leader_algo in [Algorithm::SsarRecDbl, Algorithm::DenseRing] {
            let cfg = AllreduceConfig {
                topology: Some(Topology::uniform(4, 2).unwrap()),
                hier_leader_algorithm: leader_algo,
                ..Default::default()
            };
            let outs = run_cluster(p, CostModel::zero(), |ep| {
                hierarchical_allreduce(ep, &ins[ep.rank()], &cfg).unwrap()
            });
            for out in outs {
                let got = out.to_dense_vec();
                for (g, e) in got.iter().zip(expect.iter()) {
                    assert_eq!(g.to_bits(), e.to_bits(), "{leader_algo:?}");
                }
            }
        }
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let cfg = cfg_with(Topology::uniform(2, 4).unwrap());
        let outs = run_cluster(2, CostModel::zero(), |ep| {
            let input = SparseStream::<f32>::zeros(64);
            hierarchical_allreduce(ep, &input, &cfg).is_err()
        });
        assert!(outs.iter().all(|&e| e));
    }

    #[test]
    fn world_collective_still_works_after_hierarchical() {
        // The base op-id counter must stay rank-invariant through the
        // group phases: a flat collective issued right after must match.
        let p = 8;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(1024, 32, 7300 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let cfg = cfg_with(Topology::uniform(2, 4).unwrap());
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let h = hierarchical_allreduce(ep, &ins[ep.rank()], &cfg).unwrap();
            let f = crate::allreduce::ssar_recursive_double(
                ep,
                &ins[ep.rank()],
                &AllreduceConfig::default(),
            )
            .unwrap();
            (h, f)
        });
        for (h, f) in outs {
            for ((hg, fg), e) in h
                .to_dense_vec()
                .iter()
                .zip(f.to_dense_vec().iter())
                .zip(expect.iter())
            {
                assert!((hg - e).abs() < 1e-4);
                assert!((fg - e).abs() < 1e-4);
            }
        }
    }
}
