//! Adaptive algorithm selection.
//!
//! "In practice, allreduce implementations switch between different
//! implementations depending on the message size and the number of
//! processes" (§5.3, citing Thakur & Gropp). SparCML adds the sparsity
//! dimension: the right choice depends on `P`, `N`, `k`, and the expected
//! reduced size `K`. The selector estimates `E[K]` under the uniform model
//! (Appendix B), decides between the static (SSAR) and dynamic (DSAR)
//! regimes against the δ threshold, and then picks the cheapest schedule
//! by its analytic expected cost.

use sparcml_net::{CostModel, Topology, TopologyCostModel};
use sparcml_stream::{delta_raw, Scalar};

use crate::allreduce::Algorithm;
use crate::bounds::{self, Workload};
use crate::theory::expected_union_size;

/// Expected-cost estimate of one algorithm on one workload: the analytic
/// communication envelope interpolated by the expected fill-in, plus the
/// per-node local reduction work (γ) — which is what separates recursive
/// doubling (serialized merges of growing streams) from the split family
/// (reduction work distributed across ranks); the paper folds this
/// trade-off into its practical δ discussion (§5.1).
pub(crate) fn expected_cost(algo: Algorithm, w: &Workload, c: &CostModel, ek: f64) -> f64 {
    // Interpolation weight: how far E[K] sits between full overlap (K = k)
    // and no overlap (K = P·k).
    let k = w.k as f64;
    let (p, n) = (w.p as f64, w.n as f64);
    let log2p = p.log2().ceil().max(0.0);
    let span = (p - 1.0) * k;
    let t = if span > 0.0 {
        ((ek - k) / span).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let lerp = |e: bounds::Envelope| e.lower + t * (e.upper - e.lower);
    let lerp2 = |lo: f64, hi: f64| lo + t * (hi - lo);
    match algo {
        // Auto is a placeholder resolved before costing; pricing it at
        // infinity keeps it out of any candidate sweep by construction.
        // Hierarchical needs a topology to mean anything — it is priced by
        // `estimate_hierarchical_time` against the flat best instead.
        Algorithm::Auto | Algorithm::Hierarchical => f64::INFINITY,
        Algorithm::SsarRecDbl => {
            // Merge work per node: log2(P) merges whose total size grows
            // from log2(P)·k (full overlap) to ≈ 2·(P−1)·k (disjoint).
            let compute = c.gamma * lerp2(2.0 * log2p * k, 2.0 * (p - 1.0) * k);
            lerp(bounds::ssar_rec_dbl(w, c)) + compute
        }
        Algorithm::SsarSplitAllgather => {
            // Reduction work is distributed: ≈ k incoming pairs per node
            // plus assembling the E[K]-sized gathered result.
            let compute = c.gamma * (2.0 * k + ek);
            lerp(bounds::ssar_split_ag(w, c)) + compute
        }
        Algorithm::DsarSplitAllgather => {
            // Scatter ≈ k pairs, then one dense assembly pass over N.
            let compute = c.gamma * (k + n);
            lerp(bounds::dsar_split_ag(w, c)) + compute
        }
        Algorithm::DenseRecDbl => bounds::dense_rec_dbl(w, c).lower + c.gamma * log2p * n,
        Algorithm::DenseRabenseifner => bounds::dense_rabenseifner(w, c).lower + c.gamma * n,
        Algorithm::DenseRing => bounds::dense_ring(w, c).lower + c.gamma * n,
        Algorithm::SparseRing => {
            // Ring on sparse partitions: 2(P−1) messages of ≈ E[K]/P pairs.
            2.0 * (p - 1.0) * (c.alpha + ek / p * c.beta * w.pair_bytes()) + c.gamma * 2.0 * ek
        }
        Algorithm::AdaptiveSwitch => {
            // The δ-switch tracks whichever representation the observed
            // fill-in favours, so its cost approaches the better of the
            // two recursive-doubling commitments; the 8-byte union-bound
            // header piggybacked per round is the only overhead.
            let sparse = expected_cost(Algorithm::SsarRecDbl, w, c, ek);
            let dense = expected_cost(Algorithm::DenseRecDbl, w, c, ek);
            sparse.min(dense) + log2p * 8.0 * c.beta
        }
    }
}

/// The candidate set the §5.3 sweep chooses among for this workload's
/// regime: the *dynamic* instances (`E[K] ≥ δ`) compare DSAR against the
/// dense baselines, the *static* ones compare the sparse schedules. The
/// measurement-calibrated selector ([`crate::ObservedCostModel`]) explores
/// exactly this set, so preset-based and calibrated Auto always pick from
/// the same candidates.
pub(crate) fn flat_candidates<V: Scalar>(p: usize, n: usize, k: usize) -> &'static [Algorithm] {
    let ek = expected_union_size(n, p, k.min(n));
    let delta = delta_raw::<V>(n) as f64;
    if ek >= delta {
        &[
            Algorithm::DsarSplitAllgather,
            Algorithm::DenseRabenseifner,
            Algorithm::DenseRing,
            Algorithm::DenseRecDbl,
        ]
    } else {
        &[
            Algorithm::SsarRecDbl,
            Algorithm::SsarSplitAllgather,
            Algorithm::SparseRing,
            Algorithm::AdaptiveSwitch,
        ]
    }
}

/// Picks an allreduce algorithm for a `P`-rank reduction of `N`-dim
/// vectors with `k` non-zeros per rank.
///
/// Decision structure (mirroring §5.3):
/// 1. estimate `E[K]`;
/// 2. if `E[K] ≥ δ`, the instance is *dynamic* (DSAR) — compare DSAR
///    against the dense baselines only;
/// 3. otherwise the instance is *static* — compare the sparse schedules.
pub fn select_algorithm<V: Scalar>(p: usize, n: usize, k: usize, cost: &CostModel) -> Algorithm {
    let w = Workload {
        p,
        n,
        k,
        value_bytes: V::BYTES,
    };
    let ek = expected_union_size(n, p, k.min(n));
    let candidates = flat_candidates::<V>(p, n, k);
    *candidates
        .iter()
        .min_by(|a, b| {
            expected_cost(**a, &w, cost, ek)
                .partial_cmp(&expected_cost(**b, &w, cost, ek))
                .expect("costs are finite")
        })
        .expect("candidate list non-empty")
}

impl Algorithm {
    /// Resolves [`Algorithm::Auto`] to the selector's concrete choice for
    /// a `P`-rank reduction of `N`-dim vectors with `k` non-zeros per
    /// rank; concrete algorithms pass through unchanged. This is exactly
    /// the mapping the communicator applies on the `Auto` path (after the
    /// ranks agree on `k`), exposed for inspection and testing.
    pub fn resolve_for<V: Scalar>(
        self,
        p: usize,
        n: usize,
        k: usize,
        cost: &CostModel,
    ) -> Algorithm {
        match self {
            Algorithm::Auto => select_algorithm::<V>(p, n, k, cost),
            concrete => concrete,
        }
    }
}

/// Virtual-time cost of the Auto path's per-call k-agreement: one
/// 8-byte-payload allgather (recursive doubling at power-of-two `P`,
/// ring otherwise). Latency-bound workloads pay this on top of the
/// resolved schedule — pin a concrete [`Algorithm`] to avoid it.
fn auto_agreement_cost(p: usize, c: &CostModel) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let rounds = if p.is_power_of_two() {
        (p as f64).log2()
    } else {
        (p - 1) as f64
    };
    // 8 bytes of k plus the block-group framing per round.
    rounds * (c.alpha + 24.0 * c.beta)
}

/// Estimated completion time of `algo` (exposed for reporting/EXPERIMENTS)
/// under the uniform-support fill-in model of Appendix B.
/// [`Algorithm::Auto`] is priced as its resolved concrete choice *plus*
/// the k-agreement round the communicator runs before dispatching.
pub fn estimate_time<V: Scalar>(
    algo: Algorithm,
    p: usize,
    n: usize,
    k: usize,
    cost: &CostModel,
) -> f64 {
    let agreement = if algo.is_auto() {
        auto_agreement_cost(p, cost)
    } else {
        0.0
    };
    let algo = algo.resolve_for::<V>(p, n, k, cost);
    let w = Workload {
        p,
        n,
        k,
        value_bytes: V::BYTES,
    };
    let ek = expected_union_size(n, p, k.min(n));
    agreement + expected_cost(algo, &w, cost, ek)
}

/// Expected completion time of the two-level hierarchical schedule on a
/// `topo`-shaped cluster with `k` non-zeros per rank, under the
/// link-class models of `tcm`:
///
/// 1. *intra reduce* — binomial tree over the largest node (`⌈log2 g⌉`
///    rounds on intra links; payloads grow toward the node's expected
///    union `E[K_g]`, merge work `≈ g·k` at the leader's critical path);
/// 2. *leader allreduce* — the cheapest flat schedule for `nodes` ranks
///    with `E[K_g]`-sized streams on inter links (the same §5.3 sweep,
///    applied recursively);
/// 3. *intra broadcast* — `⌈log2 g⌉` rounds carrying the global result of
///    expected size `E[K]`.
pub fn estimate_hierarchical_time<V: Scalar>(
    topo: &Topology,
    n: usize,
    k: usize,
    tcm: &TopologyCostModel,
) -> f64 {
    let p = topo.size();
    let g = topo.max_node_size();
    let nodes = topo.num_nodes();
    let k = k.min(n).max(1);
    let pair = V::BYTES as f64 + 4.0;
    let ek_group = expected_union_size(n, g, k);
    let ek_all = expected_union_size(n, p, k);
    let rounds_intra = (g as f64).log2().ceil().max(0.0);

    // (1) Intra reduce: each tree level moves at most the accumulated
    // union; bound payloads by E[K_g] and charge the leader's merge work.
    let t_reduce = rounds_intra * (tcm.intra.alpha + tcm.intra.beta * ek_group * pair)
        + tcm.intra.gamma * (g as f64) * k as f64;

    // (2) Leader-level flat allreduce, selected recursively.
    let kg = ek_group.round() as usize;
    let t_leaders = if nodes > 1 {
        let best = select_algorithm::<V>(nodes, n, kg.max(1), &tcm.inter);
        estimate_time::<V>(best, nodes, n, kg.max(1), &tcm.inter)
    } else {
        0.0
    };

    // (3) Intra broadcast of the global result.
    let t_bcast = rounds_intra * (tcm.intra.alpha + tcm.intra.beta * ek_all * pair);

    t_reduce + t_leaders + t_bcast
}

/// Topology-aware §5.3 selection: the flat sweep priced on the inter-node
/// link model, compared against [`estimate_hierarchical_time`]. Returns
/// [`Algorithm::Hierarchical`] when the two-level schedule wins and the
/// topology is non-trivial; the flat best otherwise.
pub fn select_algorithm_with_topology<V: Scalar>(
    topo: &Topology,
    n: usize,
    k: usize,
    tcm: &TopologyCostModel,
) -> Algorithm {
    let flat = select_algorithm::<V>(topo.size(), n, k, &tcm.inter);
    if topo.is_trivial() {
        return flat;
    }
    let t_flat = estimate_time::<V>(flat, topo.size(), n, k, &tcm.inter);
    let t_hier = estimate_hierarchical_time::<V>(topo, n, k, tcm);
    if t_hier < t_flat {
        Algorithm::Hierarchical
    } else {
        flat
    }
}

/// [`estimate_time`] with an explicit expected union size `ek` (callers
/// that know their supports are correlated — real Top-k gradients overlap
/// far more than the uniform model, cf. Fig. 1 — can pass a smaller `ek`).
pub fn estimate_time_with_union<V: Scalar>(
    algo: Algorithm,
    p: usize,
    n: usize,
    k: usize,
    ek: f64,
    cost: &CostModel,
) -> f64 {
    let agreement = if algo.is_auto() {
        auto_agreement_cost(p, cost)
    } else {
        0.0
    };
    let algo = algo.resolve_for::<V>(p, n, k, cost);
    let w = Workload {
        p,
        n,
        k,
        value_bytes: V::BYTES,
    };
    agreement + expected_cost(algo, &w, cost, ek.clamp(k as f64, (p * k).min(n) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_k_prefers_recursive_doubling() {
        // Latency-dominated: few non-zeros, many ranks.
        let algo = select_algorithm::<f32>(64, 1 << 24, 64, &CostModel::aries());
        assert_eq!(algo, Algorithm::SsarRecDbl);
    }

    #[test]
    fn moderate_sparsity_prefers_split_allgather() {
        // Large k but E[K] still < δ: bandwidth matters, stay sparse.
        let algo = select_algorithm::<f32>(8, 1 << 24, 1 << 17, &CostModel::aries());
        assert_eq!(algo, Algorithm::SsarSplitAllgather);
    }

    #[test]
    fn dense_fill_in_prefers_dsar_or_dense() {
        // k = N/4 at P = 64: E[K] ≈ N — dynamic instance.
        let algo = select_algorithm::<f32>(64, 1 << 16, 1 << 14, &CostModel::aries());
        assert!(
            matches!(
                algo,
                Algorithm::DsarSplitAllgather | Algorithm::DenseRabenseifner | Algorithm::DenseRing
            ),
            "got {algo:?}"
        );
    }

    #[test]
    fn auto_estimate_includes_agreement_overhead() {
        // Pricing the default path: Auto = resolved schedule + the
        // k-agreement allgather, so it must strictly exceed the pinned
        // estimate whenever P > 1.
        let cost = CostModel::gige();
        let (p, n, k) = (8usize, 1 << 20, 1 << 6);
        let resolved = Algorithm::Auto.resolve_for::<f32>(p, n, k, &cost);
        let t_auto = estimate_time::<f32>(Algorithm::Auto, p, n, k, &cost);
        let t_pinned = estimate_time::<f32>(resolved, p, n, k, &cost);
        assert!(t_auto > t_pinned, "auto {t_auto} vs pinned {t_pinned}");
        assert!((t_auto - t_pinned - 3.0 * cost.alpha).abs() < 1e-3 * cost.alpha + 1e-6);
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        for algo in Algorithm::ALL {
            let t = estimate_time::<f32>(algo, 16, 1 << 20, 1 << 10, &CostModel::gige());
            assert!(t.is_finite() && t > 0.0, "{algo:?}: {t}");
        }
    }

    #[test]
    fn hierarchy_wins_on_slow_inter_links_with_small_k() {
        // 4 nodes × 8 ranks on Ethernet with shared-memory nodes,
        // latency-bound workload: flat SSAR pays log2(32) inter-αs, the
        // two-level schedule only log2(4) of them.
        let topo = Topology::uniform(4, 8).unwrap();
        let tcm = TopologyCostModel::gige_cluster();
        let (n, k) = (1 << 24, 1 << 6);
        let t_hier = estimate_hierarchical_time::<f32>(&topo, n, k, &tcm);
        let flat = select_algorithm::<f32>(32, n, k, &tcm.inter);
        let t_flat = estimate_time::<f32>(flat, 32, n, k, &tcm.inter);
        assert!(t_hier < t_flat, "hier {t_hier} vs flat {t_flat}");
        assert_eq!(
            select_algorithm_with_topology::<f32>(&topo, n, k, &tcm),
            Algorithm::Hierarchical
        );
    }

    #[test]
    fn uniform_links_keep_flat_schedules() {
        // When intra == inter, hierarchy only adds serialization: the
        // topology-aware selector must fall back to the flat choice.
        let topo = Topology::uniform(4, 8).unwrap();
        let tcm = TopologyCostModel::uniform(CostModel::aries());
        let (n, k) = (1 << 24, 1 << 6);
        let algo = select_algorithm_with_topology::<f32>(&topo, n, k, &tcm);
        assert_ne!(algo, Algorithm::Hierarchical, "got {algo:?}");
    }

    #[test]
    fn trivial_topologies_never_pick_hierarchical() {
        let tcm = TopologyCostModel::gige_cluster();
        for topo in [Topology::single_node(8), Topology::uniform(8, 1).unwrap()] {
            let algo = select_algorithm_with_topology::<f32>(&topo, 1 << 20, 64, &tcm);
            assert_ne!(algo, Algorithm::Hierarchical);
        }
    }
}
