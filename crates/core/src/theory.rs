//! Stochastic density analysis (Appendix B of the paper).
//!
//! With per-rank supports of `k` indices drawn uniformly from `[0, N)`,
//! the expected reduced support size is
//!
//! ```text
//! E[K] = N · Σ_{i=1..P} (−1)^{i−1} · C(P, i) · (k/N)^i
//!      = N · (1 − (1 − k/N)^P)
//! ```
//!
//! (the alternating inclusion–exclusion sum telescopes into the closed
//! form). The union bound `E[K] ≤ P·k` is tight when supports are
//! disjoint. These formulas regenerate Fig. 7 and drive the adaptive
//! algorithm selector.

use sparcml_stream::XorShift64;

/// Exact `E[K]` under uniform index sampling: `N·(1 − (1 − k/N)^P)`.
pub fn expected_union_size(n: usize, p: usize, k: usize) -> f64 {
    assert!(k <= n, "k must not exceed N");
    let d = k as f64 / n as f64;
    n as f64 * (1.0 - (1.0 - d).powi(p as i32))
}

/// The paper's inclusion–exclusion form, computed term by term (numerically
/// fragile for large `P`; kept for cross-validation against the closed
/// form).
pub fn expected_union_size_inclusion_exclusion(n: usize, p: usize, k: usize) -> f64 {
    let d = k as f64 / n as f64;
    let mut sum = 0.0f64;
    let mut binom = 1.0f64; // C(P, i), updated incrementally
    for i in 1..=p {
        binom *= (p - i + 1) as f64 / i as f64;
        let term = binom * d.powi(i as i32);
        if i % 2 == 1 {
            sum += term;
        } else {
            sum -= term;
        }
    }
    n as f64 * sum
}

/// Union upper bound `min(N, P·k)` (Appendix B).
pub fn union_bound(n: usize, p: usize, k: usize) -> usize {
    (p * k).min(n)
}

/// Monte-Carlo estimate of `E[K]`: draws `trials` independent experiments
/// of `P` uniform `k`-subsets of `[0, N)` and averages the union sizes.
pub fn monte_carlo_union_size(n: usize, p: usize, k: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = XorShift64::new(seed);
    let mut total = 0usize;
    let mut seen = vec![0u32; n];
    for trial in 0..trials {
        let stamp = trial as u32 + 1;
        let mut union = 0usize;
        for _ in 0..p {
            let idx = sparcml_stream::uniform_indices(n, k, &mut rng);
            for i in idx {
                let slot = &mut seen[i as usize];
                if *slot != stamp {
                    *slot = stamp;
                    union += 1;
                }
            }
        }
        total += union;
    }
    total as f64 / trials as f64
}

/// Expected density multiplier `E[K]/k`: how much denser the reduced
/// result is than a single contribution (the quantity plotted in Fig. 7).
pub fn density_growth(n: usize, p: usize, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    expected_union_size(n, p, k) / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_inclusion_exclusion() {
        for &(n, p, k) in &[(512usize, 4usize, 16usize), (512, 16, 8), (1000, 7, 100)] {
            let a = expected_union_size(n, p, k);
            let b = expected_union_size_inclusion_exclusion(n, p, k);
            assert!((a - b).abs() < 1e-6 * n as f64, "({n},{p},{k}): {a} vs {b}");
        }
    }

    #[test]
    fn limits_are_sane() {
        // P = 1: E[K] = k exactly.
        assert!((expected_union_size(512, 1, 32) - 32.0).abs() < 1e-9);
        // k = N: always dense.
        assert!((expected_union_size(512, 5, 512) - 512.0).abs() < 1e-9);
        // k = 0: empty.
        assert_eq!(expected_union_size(512, 5, 0), 0.0);
        // Monotone in P, bounded by the union bound.
        let mut prev = 0.0;
        for p in 1..64 {
            let e = expected_union_size(512, p, 16);
            assert!(e >= prev);
            assert!(e <= union_bound(512, p, 16) as f64 + 1e-9);
            prev = e;
        }
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let (n, p, k) = (512, 8, 16);
        let exact = expected_union_size(n, p, k);
        let mc = monte_carlo_union_size(n, p, k, 400, 99);
        let rel = (mc - exact).abs() / exact;
        assert!(rel < 0.05, "MC {mc} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn density_growth_saturates() {
        // Fig. 7 shape: growth ≈ P for small k, saturates at N/k for large P.
        let g_small_p = density_growth(512, 2, 8);
        assert!((g_small_p - 2.0).abs() < 0.1);
        let g_large_p = density_growth(512, 512, 8);
        assert!(g_large_p < 512.0 / 8.0 + 1e-9);
        assert!(g_large_p > 0.9 * 512.0 / 8.0 * (1.0 - (-8.0f64).exp()));
    }
}
