//! Analytic runtime bounds from §5.3 and Lemmas 5.1 / 5.2.
//!
//! Every bound is expressed in the α–β model of [`CostModel`]: α per
//! message, β per *byte* (so the paper's `βs` per sparse pair becomes
//! `β·(4 + isize)` and `βd` per dense word becomes `β·isize`).
//! These formulas power the adaptive algorithm selector and the
//! `bounds_check` experiment that verifies measured virtual times fall
//! inside their analytic envelopes.

use sparcml_net::CostModel;

/// Inclusive lower/upper envelope for an algorithm's runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Best-case time (full support overlap, `K = k`).
    pub lower: f64,
    /// Worst-case time (disjoint supports, `K = P·k`).
    pub upper: f64,
}

/// Workload parameters for the bound formulas.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Number of ranks `P`.
    pub p: usize,
    /// Problem dimension `N`.
    pub n: usize,
    /// Per-rank non-zero count `k`.
    pub k: usize,
    /// Bytes per value (`isize`): 4 for f32, 8 for f64.
    pub value_bytes: usize,
}

impl Workload {
    /// Bytes of one sparse index–value pair (the paper's `βs` unit).
    #[inline]
    pub fn pair_bytes(&self) -> f64 {
        (4 + self.value_bytes) as f64
    }

    /// Bytes of one dense value (the paper's `βd` unit).
    #[inline]
    pub fn word_bytes(&self) -> f64 {
        self.value_bytes as f64
    }

    fn log2p(&self) -> f64 {
        (self.p as f64).log2().ceil().max(0.0)
    }
}

/// Latency term `L1(P) = log2(P)·α` of the recursive-doubling family.
pub fn l1(w: &Workload, c: &CostModel) -> f64 {
    w.log2p() * c.alpha
}

/// Latency term `L2(P) = (P−1)·α + L1(P)` of the split family.
pub fn l2(w: &Workload, c: &CostModel) -> f64 {
    (w.p as f64 - 1.0) * c.alpha + l1(w, c)
}

/// `SSAR_Recursive_double`:
/// `L1 + log2(P)·k·βs ≤ T ≤ L1 + (P−1)·k·βs` (§5.3.1).
pub fn ssar_rec_dbl(w: &Workload, c: &CostModel) -> Envelope {
    let bs = c.beta * w.pair_bytes();
    let k = w.k as f64;
    Envelope {
        lower: l1(w, c) + w.log2p() * k * bs,
        upper: l1(w, c) + (w.p as f64 - 1.0) * k * bs,
    }
}

/// `SSAR_Split_allgather`:
/// `L2 + 2·(P−1)/P·k·βs ≤ T ≤ L2 + P·k·βs` (§5.3.2).
pub fn ssar_split_ag(w: &Workload, c: &CostModel) -> Envelope {
    let bs = c.beta * w.pair_bytes();
    let (p, k) = (w.p as f64, w.k as f64);
    Envelope {
        lower: l2(w, c) + 2.0 * (p - 1.0) / p * k * bs,
        upper: l2(w, c) + p * k * bs,
    }
}

/// `DSAR_Split_allgather`:
/// `L2 + (P−1)/P·N·βd ≤ T ≤ L2 + k·βs + (P−1)/P·N·βd` (§5.3.3).
pub fn dsar_split_ag(w: &Workload, c: &CostModel) -> Envelope {
    let bs = c.beta * w.pair_bytes();
    let bd = c.beta * w.word_bytes();
    let (p, n, k) = (w.p as f64, w.n as f64, w.k as f64);
    Envelope {
        lower: l2(w, c) + (p - 1.0) / p * n * bd,
        upper: l2(w, c) + k * bs + (p - 1.0) / p * n * bd,
    }
}

/// Dense recursive doubling: `T = log2(P)·(α + N·βd)`.
pub fn dense_rec_dbl(w: &Workload, c: &CostModel) -> Envelope {
    let t = w.log2p() * (c.alpha + w.n as f64 * c.beta * w.word_bytes());
    Envelope { lower: t, upper: t }
}

/// Rabenseifner: `T = 2·log2(P)·α + 2·(P−1)/P·N·βd` (§5.3.2).
pub fn dense_rabenseifner(w: &Workload, c: &CostModel) -> Envelope {
    let (p, n) = (w.p as f64, w.n as f64);
    let t = 2.0 * w.log2p() * c.alpha + 2.0 * (p - 1.0) / p * n * c.beta * w.word_bytes();
    Envelope { lower: t, upper: t }
}

/// Ring: `T = 2·(P−1)·(α + (N/P)·βd)`.
pub fn dense_ring(w: &Workload, c: &CostModel) -> Envelope {
    let (p, n) = (w.p as f64, w.n as f64);
    let t = 2.0 * (p - 1.0) * (c.alpha + n / p * c.beta * w.word_bytes());
    Envelope { lower: t, upper: t }
}

/// Lemma 5.1: lower bounds on *any* sparse allreduce —
/// `T ≥ log2(P)·α + (P−1)·k·βd` when `K = P·k` (no overlap) and
/// `T ≥ log2(P)·α + 2·(P−1)/P·k·βd` when `K = k` (full overlap).
pub fn lemma_5_1(w: &Workload, c: &CostModel) -> (f64, f64) {
    let bd = c.beta * w.word_bytes();
    let (p, k) = (w.p as f64, w.k as f64);
    let no_overlap = l1(w, c) + (p - 1.0) * k * bd;
    let full_overlap = l1(w, c) + 2.0 * (p - 1.0) / p * k * bd;
    (no_overlap, full_overlap)
}

/// Lemma 5.2: any algorithm solving DSAR needs at least
/// `log2(P)·α + δ·βd`, i.e. a `1/(2κ)` fraction of the bandwidth-optimal
/// dense allreduce, with `κ = δ/N`.
pub fn lemma_5_2(w: &Workload, c: &CostModel, delta: usize) -> f64 {
    l1(w, c) + delta as f64 * c.beta * w.word_bytes()
}

/// Maximum speedup achievable by sparsity alone when the result is dense
/// (§5.3.3 discussion): the DSAR bandwidth floor is `1/(2κ)` of the dense
/// optimum, so the speedup is capped at `2/κ` with `κ = δ/N` (the paper's
/// worked example: κ = 0.5 → max speedup 4×).
pub fn max_sparse_speedup(delta: usize, n: usize) -> f64 {
    2.0 * n as f64 / delta as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Workload {
        Workload {
            p: 16,
            n: 1 << 20,
            k: 1 << 10,
            value_bytes: 4,
        }
    }

    fn c() -> CostModel {
        CostModel {
            alpha: 1e-6,
            beta: 1e-9,
            gamma: 0.0,
            isend_alpha_fraction: 0.1,
        }
    }

    #[test]
    fn envelopes_are_ordered() {
        for env in [
            ssar_rec_dbl(&w(), &c()),
            ssar_split_ag(&w(), &c()),
            dsar_split_ag(&w(), &c()),
        ] {
            assert!(env.lower <= env.upper, "{env:?}");
            assert!(env.lower > 0.0);
        }
    }

    #[test]
    fn latency_terms() {
        assert!((l1(&w(), &c()) - 4e-6).abs() < 1e-12);
        assert!((l2(&w(), &c()) - 19e-6).abs() < 1e-12);
    }

    #[test]
    fn rec_dbl_wins_at_tiny_k() {
        let tiny = Workload { k: 8, ..w() };
        let rd = ssar_rec_dbl(&tiny, &c());
        let sp = ssar_split_ag(&tiny, &c());
        // With almost no data, the (P−1)α split latency dominates.
        assert!(rd.upper < sp.lower);
    }

    #[test]
    fn dsar_beats_dense_baselines_but_not_by_more_than_2_over_kappa() {
        let dense = dense_rabenseifner(&w(), &c()).lower;
        let sparse_floor = lemma_5_2(&w(), &c(), w().n / 2);
        let speedup = dense / sparse_floor;
        // κ = 1/2 → max speedup 4× over the bandwidth-optimal dense, but
        // at least some speedup must exist.
        assert!(
            speedup <= max_sparse_speedup(w().n / 2, w().n) + 1e-9,
            "speedup {speedup}"
        );
        assert!(speedup > 1.0);
    }

    #[test]
    fn lemma_5_1_ordering() {
        let (no_overlap, full_overlap) = lemma_5_1(&w(), &c());
        assert!(no_overlap > full_overlap);
    }
}
