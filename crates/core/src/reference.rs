//! Sequential reference reductions used to validate every collective.

use sparcml_stream::{Scalar, SparseStream};

/// Element-wise sum of all inputs, computed sequentially in rank order.
/// All inputs must share the same dimension.
pub fn reference_sum<V: Scalar>(inputs: &[SparseStream<V>]) -> Vec<V> {
    let dim = inputs.first().map_or(0, |s| s.dim());
    let mut out = vec![V::zero(); dim];
    for input in inputs {
        assert_eq!(input.dim(), dim, "reference_sum requires equal dims");
        for (idx, val) in input.iter_nonzero() {
            let slot = &mut out[idx as usize];
            *slot = slot.add(val);
        }
    }
    out
}

/// The exact number of non-zero coordinates of the reduced result
/// (`K = |∪ H_i|`, ignoring value cancellation like the paper does).
pub fn union_support_size<V: Scalar>(inputs: &[SparseStream<V>]) -> usize {
    let dim = inputs.first().map_or(0, |s| s.dim());
    let mut seen = vec![false; dim];
    let mut count = 0usize;
    for input in inputs {
        for (idx, _) in input.iter_nonzero() {
            let slot = &mut seen[idx as usize];
            if !*slot {
                *slot = true;
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_union_small_case() {
        let a = SparseStream::from_pairs(8, &[(0, 1.0f32), (3, 2.0)]).unwrap();
        let b = SparseStream::from_pairs(8, &[(3, -2.0f32), (7, 5.0)]).unwrap();
        let sum = reference_sum(&[a.clone(), b.clone()]);
        assert_eq!(sum, vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0]);
        // Union counts index 3 although values cancel.
        assert_eq!(union_support_size(&[a, b]), 3);
    }

    #[test]
    fn empty_inputs() {
        let inputs: Vec<SparseStream<f32>> = Vec::new();
        assert!(reference_sum(&inputs).is_empty());
        assert_eq!(union_support_size(&inputs), 0);
    }
}
