//! # sparcml-core
//!
//! The SparCML sparse collective communication library — the primary
//! contribution of "SparCML: High-Performance Sparse Communication for
//! Machine Learning" (Renggli et al., SC 2019).
//!
//! The entry point is the [`Communicator`]: a per-rank session over a
//! pluggable [`sparcml_net::Transport`] whose collectives are fluent
//! builders, with the §5.3 adaptive selector ([`Algorithm::Auto`]) as the
//! default schedule:
//!
//! * [`Communicator::allreduce`] with the paper's three sparse schedules
//!   (`SSAR_Recursive_double`, `SSAR_Split_allgather`,
//!   `DSAR_Split_allgather`), three dense baselines and a sparse ring;
//! * optional QSGD low-precision allgather inside DSAR (§6) via
//!   `.quantized(..)`;
//! * non-blocking launches with ideal-overlap clock merging (§7) via
//!   `.nonblocking()`;
//! * rooted and gather collectives ([`Communicator::reduce`],
//!   [`Communicator::broadcast`], [`Communicator::reduce_scatter`],
//!   [`Communicator::allgather`], …) behind the same
//!   [`CollectiveHandle`];
//! * the analytic cost bounds of §5.3 ([`bounds`]) and the stochastic
//!   density analysis of Appendix B ([`theory`]).
//!
//! ```
//! use sparcml_core::{run_communicators, Algorithm};
//! use sparcml_net::CostModel;
//! use sparcml_stream::SparseStream;
//!
//! // 4 ranks, each contributing one sparse gradient; the result is the
//! // element-wise sum, available at every rank. `Algorithm::Auto` (the
//! // default) lets the §5.3 selector pick the schedule per call.
//! let results = run_communicators(4, CostModel::aries(), |comm| {
//!     let grad = SparseStream::from_pairs(
//!         1_000_000,
//!         &[(comm.rank() as u32 * 10, 1.0f32), (999_999, 0.5)],
//!     )
//!     .unwrap();
//!     comm.allreduce(&grad)
//!         .algorithm(Algorithm::Auto) // the default, spelled out
//!         .launch()
//!         .and_then(|handle| handle.wait())
//!         .unwrap()
//! });
//! assert_eq!(results[0].get(999_999), 2.0);
//! ```
//!
//! Internally every collective routes its O(P) message frames through a
//! per-call [`BufferPool`], so encode and receive buffers are reused
//! across the rounds of one collective instead of allocated per message.
//!
//! The 0.1 free-function shims (`allreduce`, `iallreduce`) were removed
//! in 0.3 after one deprecation release; use the [`Communicator`] builders.

#![warn(missing_docs)]

mod allgather;
mod allreduce;
pub mod bounds;
mod communicator;
mod error;
mod hierarchical;
mod nonblocking;
mod observed;
mod op;
pub mod reference;
mod rooted;
mod selector;
mod telemetry;
pub mod theory;

pub use allgather::{dense_allgather, sparse_allgather, sparse_allgather_sum};
pub use allreduce::{
    dense_rabenseifner, dense_recursive_double, dense_ring, dsar_split_allgather, sparse_ring,
    ssar_adaptive_switch, ssar_recursive_double, ssar_split_allgather,
    ssar_split_allgather_adaptive, Algorithm, AllreduceConfig,
};
pub use communicator::{
    max_communicator_time, run_communicators, run_reactor_communicators,
    run_reactor_communicators_with, run_tcp_communicators, run_tcp_communicators_with,
    run_thread_communicators, Allgather, AllgatherSum, Allreduce, Broadcast, CollectiveHandle,
    Communicator, DenseAllgather, Reduce, ReduceScatter, ENV_CALIBRATE,
};
pub use error::CollError;
pub use hierarchical::hierarchical_allreduce;
pub use nonblocking::Request;
pub use observed::{CalibrationConfig, ObservedCostModel};
pub use op::BufferPool;
pub use rooted::{
    allreduce_via_reduce_bcast, my_partition, sparse_broadcast, sparse_reduce,
    sparse_reduce_scatter,
};
pub use selector::{
    estimate_hierarchical_time, estimate_time, estimate_time_with_union, select_algorithm,
    select_algorithm_with_topology,
};
pub use telemetry::TELEMETRY_CONTROL_BASE;
// Re-exported so downstream code can name transports and topology types
// without depending on sparcml-net directly.
pub use sparcml_net::{
    Endpoint, GroupTransport, ReactorTransport, SocketTransport, TcpTransport, ThreadTransport,
    Topology, TopologyCostModel, Transport, TransportBackend, TransportConfig,
};
