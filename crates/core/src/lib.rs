//! # sparcml-core
//!
//! The SparCML sparse collective communication library — the primary
//! contribution of "SparCML: High-Performance Sparse Communication for
//! Machine Learning" (Renggli et al., SC 2019).
//!
//! Provides sparse and dense allreduce/allgather collectives over the
//! virtual-time transport of `sparcml-net`, operating on the adaptive
//! sparse streams of `sparcml-stream`:
//!
//! * [`allreduce`] with the paper's three sparse schedules
//!   (`SSAR_Recursive_double`, `SSAR_Split_allgather`,
//!   `DSAR_Split_allgather`) and three dense baselines;
//! * optional QSGD low-precision allgather inside DSAR (§6);
//! * non-blocking variants ([`iallreduce`], §7);
//! * the adaptive selector ([`select_algorithm`]);
//! * the analytic cost bounds of §5.3 ([`bounds`]) and the stochastic
//!   density analysis of Appendix B ([`theory`]).
//!
//! ```
//! use sparcml_core::{allreduce, Algorithm, AllreduceConfig};
//! use sparcml_net::{run_cluster, CostModel};
//! use sparcml_stream::SparseStream;
//!
//! // 4 ranks, each contributing one sparse gradient; the result is the
//! // element-wise sum, available at every rank.
//! let results = run_cluster(4, CostModel::aries(), |ep| {
//!     let grad = SparseStream::from_pairs(
//!         1_000_000,
//!         &[(ep.rank() as u32 * 10, 1.0f32), (999_999, 0.5)],
//!     )
//!     .unwrap();
//!     allreduce(ep, &grad, Algorithm::SsarRecDbl, &AllreduceConfig::default()).unwrap()
//! });
//! assert_eq!(results[0].get(999_999), 2.0);
//! ```

#![warn(missing_docs)]

mod allgather;
mod allreduce;
pub mod bounds;
mod error;
mod nonblocking;
mod op;
pub mod reference;
mod rooted;
mod selector;
pub mod theory;

pub use allgather::{dense_allgather, sparse_allgather, sparse_allgather_sum};
pub use allreduce::{
    allreduce, dense_rabenseifner, dense_recursive_double, dense_ring, dsar_split_allgather,
    sparse_ring, ssar_recursive_double, ssar_split_allgather, Algorithm, AllreduceConfig,
};
pub use error::CollError;
pub use nonblocking::{iallreduce, Request};
pub use rooted::{
    allreduce_via_reduce_bcast, my_partition, sparse_broadcast, sparse_reduce,
    sparse_reduce_scatter,
};
pub use selector::{estimate_time, estimate_time_with_union, select_algorithm};
