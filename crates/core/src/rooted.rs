//! Rooted collectives: sparse `reduce` (to a root), `broadcast`, and
//! `reduce_scatter` (§5.2: "allreduce can be implemented in many ways,
//! for example, the nodes could collaborate to compute the result at a
//! single node (reduce) followed by a broadcast").
//!
//! These complete the MPI-like surface of the library; `reduce +
//! broadcast` is also a useful latency/bandwidth trade-off point that the
//! integration tests compare against the one-shot allreduce.

use sparcml_net::Transport;
use sparcml_stream::{partition_range, Scalar, SparseStream};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{add_charged, pow2_below, recv_stream, send_stream, subtag, tag, BufferPool};

/// Binomial-tree sparse reduce: the element-wise sum of all inputs lands
/// at `root`; other ranks receive an empty stream of the same dimension.
pub fn sparse_reduce<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    root: usize,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    sparse_reduce_pooled(ep, input, root, cfg, &mut BufferPool::new())
}

/// [`sparse_reduce`] routing its frames through a caller-owned pool (the
/// communicator's persistent session pool).
pub(crate) fn sparse_reduce_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    root: usize,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if root >= p {
        return Err(CollError::Invalid(format!(
            "root {root} out of range for {p} ranks"
        )));
    }
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    // Rotate ranks so the root sits at virtual rank 0, then run a binomial
    // tree over virtual ranks (correct for any P).
    let vrank = (ep.rank() + p - root) % p;
    let mut acc = input.clone();
    let mut step = 1usize;
    while step < p {
        if vrank & step != 0 {
            // Send to the partner below and leave the tree.
            let dst = ((vrank - step) + root) % p;
            send_stream(
                ep,
                dst,
                tag(op_id, subtag::ROUND + step as u64),
                &acc,
                true,
                pool,
            )?;
            break;
        }
        if vrank + step < p {
            let src = ((vrank + step) + root) % p;
            let theirs =
                recv_stream::<_, V>(ep, src, tag(op_id, subtag::ROUND + step as u64), pool)?;
            add_charged(ep, &mut acc, &theirs, &cfg.policy)?;
        }
        step <<= 1;
    }
    if ep.rank() == root {
        Ok(acc)
    } else {
        Ok(SparseStream::zeros(input.dim()))
    }
}

/// Binomial-tree broadcast of a sparse stream from `root`. Non-root ranks
/// pass their (ignored) `input` only to convey the dimension.
pub fn sparse_broadcast<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    root: usize,
) -> Result<SparseStream<V>, CollError> {
    sparse_broadcast_pooled(ep, input, root, &mut BufferPool::new())
}

/// [`sparse_broadcast`] routing its frames through a caller-owned pool
/// (the communicator's persistent session pool).
pub(crate) fn sparse_broadcast_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    root: usize,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if root >= p {
        return Err(CollError::Invalid(format!(
            "root {root} out of range for {p} ranks"
        )));
    }
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    let vrank = (ep.rank() + p - root) % p;
    // Receive from the parent (highest set bit), then forward downwards.
    let value = if vrank == 0 {
        input.clone()
    } else {
        let parent_v = vrank & (vrank - 1); // clear lowest set bit
        let parent = (parent_v + root) % p;
        let sub = vrank & vrank.wrapping_neg(); // lowest set bit = my level
        recv_stream::<_, V>(ep, parent, tag(op_id, subtag::ROUND + sub as u64), pool)?
    };
    // Forward to children (farthest first, so distant subtrees start
    // while we serialize the remaining sends — this keeps the total depth
    // at log2(P) rounds).
    let my_low = if vrank == 0 {
        pow2_below(p).max(1) << 1
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut step = pow2_below(p);
    while step >= 1 {
        if step < my_low {
            let child_v = vrank + step;
            if child_v < p {
                let child = (child_v + root) % p;
                send_stream(
                    ep,
                    child,
                    tag(op_id, subtag::ROUND + step as u64),
                    &value,
                    true,
                    pool,
                )?;
            }
        }
        step >>= 1;
    }
    // Keep the invariant: every rank returns the root's stream.
    if ep.rank() != root {
        value.check_invariants()?;
    }
    Ok(value)
}

/// Reduce-scatter over sparse streams: rank `i` receives the fully reduced
/// sub-vector for its dimension partition (support restricted to
/// `partition_range(dim, P, i)`, logical dimension preserved). This is
/// exactly the split phase of `SSAR_Split_allgather` exposed as a
/// first-class collective.
pub fn sparse_reduce_scatter<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    sparse_reduce_scatter_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`sparse_reduce_scatter`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn sparse_reduce_scatter_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    crate::allreduce::split_reduce_partition(ep, input, cfg, op_id, pool)
}

/// Allreduce composed as reduce + broadcast, for comparison with the
/// one-shot schedules (a classic trade-off the paper mentions in §5.3).
pub fn allreduce_via_reduce_bcast<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    allreduce_via_reduce_bcast_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`allreduce_via_reduce_bcast`] routing its frames through a
/// caller-owned pool (the communicator's persistent session pool).
pub(crate) fn allreduce_via_reduce_bcast_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let reduced = sparse_reduce_pooled(ep, input, 0, cfg, pool)?;
    sparse_broadcast_pooled(ep, &reduced, 0, pool)
}

/// Convenience: the partition owned by this rank for a given dimension.
pub fn my_partition<T: Transport>(ep: &T, dim: usize) -> (u32, u32) {
    let r = partition_range(dim, ep.size(), ep.rank());
    (r.lo, r.hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_net::{max_virtual_time, run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    fn inputs(p: usize, dim: usize, nnz: usize) -> Vec<SparseStream<f32>> {
        (0..p)
            .map(|r| random_sparse(dim, nnz, 4400 + r as u64))
            .collect()
    }

    #[test]
    fn reduce_lands_sum_at_root_only() {
        for p in [2usize, 4, 5, 8] {
            for root in [0usize, p - 1] {
                let ins = inputs(p, 1024, 32);
                let expect = reference_sum(&ins);
                let outs = run_cluster(p, CostModel::zero(), |ep| {
                    sparse_reduce(ep, &ins[ep.rank()], root, &AllreduceConfig::default()).unwrap()
                });
                for (g, e) in outs[root].to_dense_vec().iter().zip(&expect) {
                    assert!((g - e).abs() < 1e-4, "P={p} root={root}");
                }
                for (r, out) in outs.iter().enumerate() {
                    if r != root {
                        assert_eq!(out.nnz(), 0, "non-root rank {r} should be empty");
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_replicates_root_stream() {
        for p in [2usize, 3, 4, 7, 8] {
            let root = p / 2;
            let payload = random_sparse::<f32>(2048, 64, 99);
            let outs = run_cluster(p, CostModel::zero(), |ep| {
                let input = if ep.rank() == root {
                    payload.clone()
                } else {
                    SparseStream::zeros(2048)
                };
                sparse_broadcast(ep, &input, root).unwrap()
            });
            for (r, out) in outs.iter().enumerate() {
                assert_eq!(out, &payload, "P={p} rank={r}");
            }
        }
    }

    #[test]
    fn reduce_scatter_partitions_the_sum() {
        let p = 4;
        let dim = 1000;
        let ins = inputs(p, dim, 100);
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let mine =
                sparse_reduce_scatter(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap();
            (ep.rank(), mine)
        });
        for (rank, mine) in outs {
            let range = partition_range(dim, p, rank);
            let got = mine.to_dense_vec();
            for i in 0..dim {
                let e = if range.contains(i as u32) {
                    expect[i]
                } else {
                    0.0
                };
                assert!((got[i] - e).abs() < 1e-4, "rank {rank} coord {i}");
            }
        }
    }

    #[test]
    fn reduce_bcast_matches_allreduce() {
        let p = 8;
        let ins = inputs(p, 4096, 64);
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            allreduce_via_reduce_bcast(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            for (g, e) in out.to_dense_vec().iter().zip(&expect) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn reduce_bcast_latency_is_2log2p() {
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let t = max_virtual_time(p, cost, |ep| {
            let input = SparseStream::<f32>::zeros(256);
            allreduce_via_reduce_bcast(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        // Binomial reduce log2(P)·α + binomial bcast log2(P)·α.
        assert!((t - 6.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn invalid_root_rejected() {
        let outs = run_cluster(2, CostModel::zero(), |ep| {
            let input = SparseStream::<f32>::zeros(16);
            sparse_reduce(ep, &input, 7, &AllreduceConfig::default()).is_err()
        });
        assert!(outs.iter().all(|&e| e));
    }

    #[test]
    fn my_partition_covers_dim() {
        let outs = run_cluster(3, CostModel::zero(), |ep| my_partition(ep, 10));
        let total: u32 = outs.iter().map(|(lo, hi)| hi - lo).sum();
        assert_eq!(total, 10);
    }
}
