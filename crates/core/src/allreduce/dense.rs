//! Dense allreduce baselines: recursive doubling, Rabenseifner [44], and
//! ring. These are "the MPI allreduce implementation on the fully dense
//! vectors" that every experiment in §8 compares against.

use sparcml_net::Transport;
use sparcml_stream::{partition_range, Scalar, SparseStream};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{
    add_charged, exchange_stream, fold_to_pow2, pow2_below, subtag, tag, unfold_result, BufferPool,
    FoldRole,
};

/// Encodes a dense value block as a stream container (dim = block length)
/// into a pooled buffer — one bulk slab write, no intermediate stream.
fn encode_block<V: Scalar>(values: &[V], pool: &mut BufferPool) -> bytes::Bytes {
    let mut buf = pool.acquire();
    SparseStream::encode_dense_slice_into(values, &mut buf);
    bytes::Bytes::from(buf)
}

/// Decodes a dense value block, checking its length.
fn decode_block<V: Scalar>(bytes: &[u8], expect_len: usize) -> Result<Vec<V>, CollError> {
    let stream = SparseStream::<V>::decode(bytes)?;
    let values = stream.into_dense_vec();
    if values.len() != expect_len {
        return Err(CollError::Invalid(format!(
            "dense block length {} != expected {expect_len}",
            values.len()
        )));
    }
    Ok(values)
}

/// Dense recursive-doubling allreduce: `log2(P)` rounds, each exchanging
/// the full vector. `T = log2(P)·(α + N·βd)` plus reduction time.
pub fn dense_recursive_double<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    dense_recursive_double_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`dense_recursive_double`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn dense_recursive_double_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    let mut dense_input = input.clone();
    if dense_input.is_sparse() {
        ep.compute(dense_input.stored_len());
        dense_input.densify();
    }
    if p == 1 {
        return Ok(dense_input);
    }
    let op_id = ep.next_op_id();
    let role = fold_to_pow2(ep, op_id, &dense_input, &cfg.policy, pool)?;
    let result = match role {
        FoldRole::Active(mut acc) => {
            let p2 = pow2_below(p);
            let rank = ep.rank();
            for t in 0..p2.trailing_zeros() as usize {
                let peer = rank ^ (1 << t);
                let theirs =
                    exchange_stream(ep, peer, tag(op_id, subtag::ROUND + t as u64), &acc, pool)?;
                add_charged(ep, &mut acc, &theirs, &cfg.policy)?;
            }
            unfold_result(ep, op_id, Some(acc), pool)?
        }
        FoldRole::Parked => unfold_result::<_, V>(ep, op_id, None, pool)?,
    };
    Ok(result)
}

/// Rabenseifner's allreduce \[44\]: recursive-halving reduce-scatter followed
/// by recursive-doubling allgather. `T = 2·log2(P)·α + 2·(P−1)/P·N·βd`,
/// bandwidth-optimal for large dense vectors (§5.3.2).
pub fn dense_rabenseifner<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    dense_rabenseifner_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`dense_rabenseifner`] routing its frames through a caller-owned pool
/// (the communicator's persistent session pool).
pub(crate) fn dense_rabenseifner_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    let dim = input.dim();
    let mut dense_input = input.clone();
    if dense_input.is_sparse() {
        ep.compute(dense_input.stored_len());
        dense_input.densify();
    }
    if p == 1 {
        return Ok(dense_input);
    }
    let op_id = ep.next_op_id();
    let role = fold_to_pow2(ep, op_id, &dense_input, &cfg.policy, pool)?;
    let result = match role {
        FoldRole::Active(acc) => {
            let p2 = pow2_below(p);
            let rank = ep.rank();
            let rounds = p2.trailing_zeros() as usize;
            let mut vals = acc.into_dense_vec();
            let (mut lo, mut hi) = (0usize, dim);
            // Block range before each halving round; needed to reconstruct
            // the partner's (possibly different-sized) block on the way up.
            let mut range_stack: Vec<(usize, usize)> = Vec::with_capacity(rounds);
            // Recursive halving: at round t, pair with a peer at distance
            // p2/2^(t+1); each side keeps the half of its current block
            // selected by the corresponding rank bit.
            for t in 0..rounds {
                let dist = p2 >> (t + 1);
                let peer = rank ^ dist;
                range_stack.push((lo, hi));
                let mid = lo + (hi - lo) / 2;
                let (keep, send) = if rank & dist == 0 {
                    ((lo, mid), (mid, hi))
                } else {
                    ((mid, hi), (lo, mid))
                };
                let payload = encode_block(&vals[send.0..send.1], pool);
                ep.send(peer, tag(op_id, subtag::ROUND + t as u64), payload)?;
                let incoming = ep.recv(peer, tag(op_id, subtag::ROUND + t as u64))?;
                let theirs: Vec<V> = decode_block(&incoming, keep.1 - keep.0)?;
                pool.recycle(incoming);
                for (slot, v) in vals[keep.0..keep.1].iter_mut().zip(theirs) {
                    *slot = slot.add(v);
                }
                ep.compute(keep.1 - keep.0);
                lo = keep.0;
                hi = keep.1;
            }
            // Recursive doubling allgather: reverse pairing order. The
            // partner holds the complement of my block within the combined
            // range recorded on the way down.
            for t in (0..rounds).rev() {
                let dist = p2 >> (t + 1);
                let peer = rank ^ dist;
                let (combined_lo, combined_hi) = range_stack.pop().expect("one range per round");
                let payload = encode_block(&vals[lo..hi], pool);
                ep.send(peer, tag(op_id, subtag::ROUND + 32 + t as u64), payload)?;
                let incoming = ep.recv(peer, tag(op_id, subtag::ROUND + 32 + t as u64))?;
                let (their_lo, their_hi) = if lo == combined_lo {
                    (hi, combined_hi)
                } else {
                    (combined_lo, lo)
                };
                let theirs: Vec<V> = decode_block(&incoming, their_hi - their_lo)?;
                pool.recycle(incoming);
                vals[their_lo..their_hi].copy_from_slice(&theirs);
                lo = combined_lo;
                hi = combined_hi;
            }
            debug_assert_eq!((lo, hi), (0, dim));
            unfold_result(ep, op_id, Some(SparseStream::from_dense(vals)), pool)?
        }
        FoldRole::Parked => unfold_result::<_, V>(ep, op_id, None, pool)?,
    };
    Ok(result)
}

/// Ring allreduce: `P−1` reduce-scatter steps plus `P−1` allgather steps on
/// `N/P`-sized partitions. `T = 2·(P−1)·(α + (N/P)·βd)`. Bandwidth-optimal,
/// latency-heavy at scale — "on a fast network and relatively small number
/// of nodes, the ring-based algorithm is faster th\[a\]n all other
/// algorithms, but does not give any speedup at high number of nodes" (§8.1).
pub fn dense_ring<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    dense_ring_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`dense_ring`] routing its frames through a caller-owned pool (the
/// communicator's persistent session pool).
pub(crate) fn dense_ring_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let _ = cfg;
    let p = ep.size();
    let dim = input.dim();
    let mut dense_input = input.clone();
    if dense_input.is_sparse() {
        ep.compute(dense_input.stored_len());
        dense_input.densify();
    }
    if p == 1 {
        return Ok(dense_input);
    }
    let op_id = ep.next_op_id();
    let rank = ep.rank();
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let mut vals = dense_input.into_dense_vec();
    let range = |j: usize| partition_range(dim, p, j);

    // Reduce-scatter: partition j travels rank j → j+1 → …, accumulating.
    for step in 0..p - 1 {
        let send_idx = (rank + p - step) % p;
        let recv_idx = (rank + p - step - 1) % p;
        let sr = range(send_idx);
        let payload = encode_block(&vals[sr.lo as usize..sr.hi as usize], pool);
        ep.send(
            next,
            tag(op_id, subtag::RING + ((step as u64) << 8)),
            payload,
        )?;
        let incoming = ep.recv(prev, tag(op_id, subtag::RING + ((step as u64) << 8)))?;
        let rr = range(recv_idx);
        let theirs: Vec<V> = decode_block(&incoming, rr.len())?;
        pool.recycle(incoming);
        for (slot, v) in vals[rr.lo as usize..rr.hi as usize].iter_mut().zip(theirs) {
            *slot = slot.add(v);
        }
        ep.compute(rr.len());
    }
    // Allgather: forward fully reduced partitions around the ring.
    for step in 0..p - 1 {
        let send_idx = (rank + 1 + p - step) % p;
        let recv_idx = (rank + p - step) % p;
        let sr = range(send_idx);
        let payload = encode_block(&vals[sr.lo as usize..sr.hi as usize], pool);
        ep.send(
            next,
            tag(op_id, subtag::RING + 1 + ((step as u64) << 8)),
            payload,
        )?;
        let incoming = ep.recv(prev, tag(op_id, subtag::RING + 1 + ((step as u64) << 8)))?;
        let rr = range(recv_idx);
        let theirs: Vec<V> = decode_block(&incoming, rr.len())?;
        pool.recycle(incoming);
        vals[rr.lo as usize..rr.hi as usize].copy_from_slice(&theirs);
    }
    Ok(SparseStream::from_dense(vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_net::{max_virtual_time, run_cluster, CostModel, Endpoint};
    use sparcml_stream::random_sparse;

    type DenseAlgo = fn(
        &mut Endpoint,
        &SparseStream<f32>,
        &AllreduceConfig,
    ) -> Result<SparseStream<f32>, CollError>;

    fn check(algo: DenseAlgo, p: usize, dim: usize) {
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, dim / 8, 900 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            algo(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-3, "{g} vs {e} (P={p}, dim={dim})");
            }
        }
    }

    #[test]
    fn rec_dbl_correct() {
        check(dense_recursive_double, 8, 512);
        check(dense_recursive_double, 6, 300);
        check(dense_recursive_double, 1, 64);
    }

    #[test]
    fn rabenseifner_correct() {
        check(dense_rabenseifner, 8, 512);
        check(dense_rabenseifner, 4, 64);
        check(dense_rabenseifner, 16, 1024);
    }

    #[test]
    fn rabenseifner_correct_non_power_of_two() {
        check(dense_rabenseifner, 6, 300);
        check(dense_rabenseifner, 3, 90);
    }

    #[test]
    fn rabenseifner_correct_odd_dimension() {
        // Halving of odd-length blocks produces unequal halves; the
        // allgather must reconstruct partner block sizes exactly.
        check(dense_rabenseifner, 4, 15);
        check(dense_rabenseifner, 8, 1021);
        check(dense_rabenseifner, 2, 3);
    }

    #[test]
    fn ring_correct() {
        check(dense_ring, 8, 512);
        check(dense_ring, 5, 300);
        check(dense_ring, 2, 10);
        check(dense_ring, 1, 4);
    }

    #[test]
    fn rabenseifner_latency_is_2log2p_alpha() {
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let t = max_virtual_time(p, cost, |ep| {
            let input = SparseStream::from_dense(vec![0.0f32; 64]);
            dense_rabenseifner(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        assert!((t - 6.0).abs() < 1e-9, "t = {t}, expected 2·log2(8) = 6");
    }

    #[test]
    fn rabenseifner_bandwidth_beats_rec_dbl_for_large_n() {
        let cost = CostModel {
            alpha: 0.0,
            beta: 1e-6,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let dim = 1 << 14;
        let input = SparseStream::from_dense(vec![1.0f32; dim]);
        let t_rab = max_virtual_time(p, cost, |ep| {
            dense_rabenseifner(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        let t_rd = max_virtual_time(p, cost, |ep| {
            dense_recursive_double(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        // 2·(P−1)/P·N vs log2(P)·N: ratio ≈ 1.75/3.
        assert!(t_rab < t_rd, "rabenseifner {t_rab} vs rec_dbl {t_rd}");
    }

    #[test]
    fn ring_latency_grows_linearly() {
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let input = SparseStream::from_dense(vec![0.0f32; 64]);
        let t8 = max_virtual_time(8, cost, |ep| {
            dense_ring(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        assert!((t8 - 14.0).abs() < 1e-9, "2·(P−1)·α = 14, got {t8}");
    }
}
