//! Sparse and dense allreduce algorithms (§5.3 of the paper).
//!
//! Every algorithm computes the element-wise sum of the `P` input vectors
//! and leaves a copy of the result at every rank. The variants differ in
//! their communication schedules and in how they exploit sparsity:
//!
//! | algorithm | schedule | intended regime |
//! |---|---|---|
//! | [`Algorithm::SsarRecDbl`] | recursive doubling on sparse streams | small data, latency-bound (§5.3.1) |
//! | [`Algorithm::SsarSplitAllgather`] | dimension split + sparse allgather | large sparse data (§5.3.2) |
//! | [`Algorithm::DsarSplitAllgather`] | dimension split + dense (optionally quantized) allgather | dense final result (§5.3.3, §6) |
//! | [`Algorithm::DenseRecDbl`] | recursive doubling on dense vectors | baseline |
//! | [`Algorithm::DenseRabenseifner`] | recursive halving + doubling | large dense data baseline [44] |
//! | [`Algorithm::DenseRing`] | ring reduce-scatter + allgather | bandwidth-bound dense baseline |
//! | [`Algorithm::SparseRing`] | ring schedule on sparse partitions | the "sparse counterpart" of Fig. 3 |

mod dense;
mod dsar_split_ag;
mod sparse_ring;
mod ssar_rec_dbl;
mod ssar_split_ag;

pub use dense::{dense_rabenseifner, dense_recursive_double, dense_ring};
pub(crate) use ssar_split_ag::split_reduce_partition as split_reduce_partition_public;
pub use dsar_split_ag::dsar_split_allgather;
pub use sparse_ring::sparse_ring;
pub use ssar_rec_dbl::ssar_recursive_double;
pub use ssar_split_ag::ssar_split_allgather;

use sparcml_net::Endpoint;
use sparcml_quant::QsgdConfig;
use sparcml_stream::{DensityPolicy, Scalar, SparseStream};

use crate::error::CollError;

/// Which allreduce schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sparse recursive doubling (`SSAR_Recursive_double`).
    SsarRecDbl,
    /// Sparse split + sparse allgather (`SSAR_Split_allgather`).
    SsarSplitAllgather,
    /// Sparse split + dense allgather (`DSAR_Split_allgather`).
    DsarSplitAllgather,
    /// Dense recursive doubling baseline.
    DenseRecDbl,
    /// Dense Rabenseifner baseline (reduce-scatter + allgather).
    DenseRabenseifner,
    /// Dense ring baseline.
    DenseRing,
    /// Sparse ring (ring schedule on sparse partitions).
    SparseRing,
}

impl Algorithm {
    /// All concrete algorithms, for sweeps.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::SsarRecDbl,
        Algorithm::SsarSplitAllgather,
        Algorithm::DsarSplitAllgather,
        Algorithm::DenseRecDbl,
        Algorithm::DenseRabenseifner,
        Algorithm::DenseRing,
        Algorithm::SparseRing,
    ];

    /// Short human-readable name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SsarRecDbl => "SSAR_Recursive_double",
            Algorithm::SsarSplitAllgather => "SSAR_Split_allgather",
            Algorithm::DsarSplitAllgather => "DSAR_Split_allgather",
            Algorithm::DenseRecDbl => "Dense_Recursive_double",
            Algorithm::DenseRabenseifner => "Dense_Rabenseifner",
            Algorithm::DenseRing => "Dense_Ring",
            Algorithm::SparseRing => "Sparse_Ring",
        }
    }
}

/// Options shared by all allreduce variants.
#[derive(Debug, Clone)]
pub struct AllreduceConfig {
    /// Sparse→dense switching policy (δ scaling, §5.1).
    pub policy: DensityPolicy,
    /// When set, `DSAR_Split_allgather` quantizes the dense partition
    /// results before the allgather stage (§6).
    pub quant: Option<QsgdConfig>,
    /// Seed for stochastic quantization; each rank derives `seed + rank`.
    pub quant_seed: u64,
    /// Whether the split phase uses blocking sends (charging the paper's
    /// full `(P−1)α` to the sender) or non-blocking isends.
    pub blocking_split_sends: bool,
}

impl Default for AllreduceConfig {
    fn default() -> Self {
        AllreduceConfig {
            policy: DensityPolicy::default(),
            quant: None,
            quant_seed: 0x005b_ac31,
            blocking_split_sends: true,
        }
    }
}

/// Runs the selected allreduce `algo` over `input`, returning the global
/// element-wise sum (present at every rank on return).
pub fn allreduce<V: Scalar>(
    ep: &mut Endpoint,
    input: &SparseStream<V>,
    algo: Algorithm,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    match algo {
        Algorithm::SsarRecDbl => ssar_recursive_double(ep, input, cfg),
        Algorithm::SsarSplitAllgather => ssar_split_allgather(ep, input, cfg),
        Algorithm::DsarSplitAllgather => dsar_split_allgather(ep, input, cfg),
        Algorithm::DenseRecDbl => dense_recursive_double(ep, input, cfg),
        Algorithm::DenseRabenseifner => dense_rabenseifner(ep, input, cfg),
        Algorithm::DenseRing => dense_ring(ep, input, cfg),
        Algorithm::SparseRing => sparse_ring(ep, input, cfg),
    }
}
