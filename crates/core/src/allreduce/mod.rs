//! Sparse and dense allreduce algorithms (§5.3 of the paper).
//!
//! Every algorithm computes the element-wise sum of the `P` input vectors
//! and leaves a copy of the result at every rank. The variants differ in
//! their communication schedules and in how they exploit sparsity:
//!
//! | algorithm | schedule | intended regime |
//! |---|---|---|
//! | [`Algorithm::Auto`] | adaptive (§5.3 selector) | the default: picks one of the below per call |
//! | [`Algorithm::SsarRecDbl`] | recursive doubling on sparse streams | small data, latency-bound (§5.3.1) |
//! | [`Algorithm::SsarSplitAllgather`] | dimension split + sparse allgather | large sparse data (§5.3.2) |
//! | [`Algorithm::DsarSplitAllgather`] | dimension split + dense (optionally quantized) allgather | dense final result (§5.3.3, §6) |
//! | [`Algorithm::DenseRecDbl`] | recursive doubling on dense vectors | baseline |
//! | [`Algorithm::DenseRabenseifner`] | recursive halving + doubling | large dense data baseline [44] |
//! | [`Algorithm::DenseRing`] | ring reduce-scatter + allgather | bandwidth-bound dense baseline |
//! | [`Algorithm::SparseRing`] | ring schedule on sparse partitions | the "sparse counterpart" of Fig. 3 |
//! | [`Algorithm::AdaptiveSwitch`] | recursive doubling with the in-collective δ-switch | mixed/unknown density: starts sparse, densifies the remaining rounds once the projected union crosses δ |
//! | [`Algorithm::Hierarchical`] | intra-node reduce → leader-level flat allreduce → intra-node broadcast | multi-node clusters with fast intra-node links (needs a [`AllreduceConfig::topology`]) |

mod dense;
mod dsar_split_ag;
mod sparse_ring;
mod ssar_rec_dbl;
mod ssar_split_ag;

pub use dense::{dense_rabenseifner, dense_recursive_double, dense_ring};
pub(crate) use dense::{
    dense_rabenseifner_pooled, dense_recursive_double_pooled, dense_ring_pooled,
};
pub use dsar_split_ag::dsar_split_allgather;
pub(crate) use dsar_split_ag::dsar_split_allgather_pooled;
pub use sparse_ring::sparse_ring;
pub(crate) use sparse_ring::sparse_ring_pooled;
pub use ssar_rec_dbl::{ssar_adaptive_switch, ssar_recursive_double};
pub(crate) use ssar_rec_dbl::{ssar_adaptive_switch_pooled, ssar_recursive_double_pooled};
// The split phase of SSAR_Split_allgather doubles as the crate's
// reduce-scatter building block (see `rooted::sparse_reduce_scatter`).
pub(crate) use ssar_split_ag::split_reduce_partition;
pub use ssar_split_ag::{ssar_split_allgather, ssar_split_allgather_adaptive};
pub(crate) use ssar_split_ag::{ssar_split_allgather_adaptive_pooled, ssar_split_allgather_pooled};

use std::sync::Arc;

use bytes::Bytes;
use sparcml_net::{Topology, TopologyCostModel, Transport};
use sparcml_obs as obs;
use sparcml_quant::QsgdConfig;
use sparcml_stream::{DensityPolicy, Scalar, SparseStream};

use crate::error::CollError;
use crate::observed::ObservedCostModel;
use crate::op::{allgather_bytes, BufferPool};

/// Which allreduce schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Adaptive selection (the §5.3 selector): the communicator estimates
    /// the expected fill-in for the observed workload and picks the
    /// cheapest concrete schedule under its transport's cost model. This
    /// is the default of the [`crate::Communicator`] builder API.
    Auto,
    /// Sparse recursive doubling (`SSAR_Recursive_double`).
    SsarRecDbl,
    /// Sparse split + sparse allgather (`SSAR_Split_allgather`).
    SsarSplitAllgather,
    /// Sparse split + dense allgather (`DSAR_Split_allgather`).
    DsarSplitAllgather,
    /// Dense recursive doubling baseline.
    DenseRecDbl,
    /// Dense Rabenseifner baseline (reduce-scatter + allgather).
    DenseRabenseifner,
    /// Dense ring baseline.
    DenseRing,
    /// Sparse ring (ring schedule on sparse partitions).
    SparseRing,
    /// Recursive doubling with the in-collective δ-switch: every merge
    /// round tracks the running union size and, once the projected
    /// end-of-collective union crosses the paper's raw δ, the remaining
    /// rounds run on the dense representation
    /// ([`crate::ssar_adaptive_switch`]). The repr decisions are
    /// rank-agreed by construction — the union size and switch state are
    /// piggybacked on every frame header.
    AdaptiveSwitch,
    /// Two-level topology-aware schedule: intra-node sparse reduce to each
    /// node's leader, a flat sparse allreduce among the leaders (chosen
    /// recursively — [`AllreduceConfig::hier_leader_algorithm`]), then an
    /// intra-node broadcast. Needs a non-trivial
    /// [`AllreduceConfig::topology`] (falls back to a flat schedule
    /// otherwise); composes the existing building blocks over
    /// [`sparcml_net::GroupTransport`] subgroup views.
    Hierarchical,
}

impl Algorithm {
    /// All concrete *flat* algorithms, for sweeps ([`Algorithm::Auto`]
    /// resolves to one of these, or to [`Algorithm::Hierarchical`] when a
    /// non-trivial topology is configured; `Hierarchical` is excluded here
    /// because it needs a topology to mean anything).
    pub const ALL: [Algorithm; 8] = [
        Algorithm::SsarRecDbl,
        Algorithm::SsarSplitAllgather,
        Algorithm::DsarSplitAllgather,
        Algorithm::DenseRecDbl,
        Algorithm::DenseRabenseifner,
        Algorithm::DenseRing,
        Algorithm::SparseRing,
        // Appended last so the 1-byte agreement indices of the original
        // seven stay stable across mixed-version clusters.
        Algorithm::AdaptiveSwitch,
    ];

    /// Short human-readable name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "Auto",
            Algorithm::SsarRecDbl => "SSAR_Recursive_double",
            Algorithm::SsarSplitAllgather => "SSAR_Split_allgather",
            Algorithm::DsarSplitAllgather => "DSAR_Split_allgather",
            Algorithm::DenseRecDbl => "Dense_Recursive_double",
            Algorithm::DenseRabenseifner => "Dense_Rabenseifner",
            Algorithm::DenseRing => "Dense_Ring",
            Algorithm::SparseRing => "Sparse_Ring",
            Algorithm::AdaptiveSwitch => "Adaptive_switch",
            Algorithm::Hierarchical => "Hierarchical",
        }
    }

    /// Whether this is the adaptive placeholder rather than a concrete
    /// schedule.
    pub fn is_auto(&self) -> bool {
        matches!(self, Algorithm::Auto)
    }
}

/// Options shared by all allreduce variants.
#[derive(Debug, Clone)]
pub struct AllreduceConfig {
    /// Sparse→dense switching policy (δ scaling, §5.1).
    pub policy: DensityPolicy,
    /// When set, `DSAR_Split_allgather` quantizes the dense partition
    /// results before the allgather stage (§6).
    pub quant: Option<QsgdConfig>,
    /// Seed for stochastic quantization; each rank derives `seed + rank`.
    pub quant_seed: u64,
    /// Whether the split phase uses blocking sends (charging the paper's
    /// full `(P−1)α` to the sender) or non-blocking isends.
    pub blocking_split_sends: bool,
    /// Node placement for [`Algorithm::Hierarchical`] and the
    /// topology-aware [`Algorithm::Auto`] path. `None` means flat: `Auto`
    /// never picks `Hierarchical`, and an explicit `Hierarchical` request
    /// consults the `SPARCML_TOPOLOGY`/`SPARCML_NODES` environment before
    /// degrading to a flat schedule.
    pub topology: Option<Topology>,
    /// Link parameters per class (intra-node vs inter-node) for pricing
    /// flat-vs-hierarchical. `None` derives them from the environment
    /// (`SPARCML_COST_MODEL`/`SPARCML_COST_MODEL_INTRA`) or, failing
    /// that, from the transport's flat hint via
    /// [`TopologyCostModel::from_flat`].
    pub topology_cost: Option<TopologyCostModel>,
    /// The flat algorithm the node leaders run in the middle stage of
    /// [`Algorithm::Hierarchical`]. [`Algorithm::Auto`] (the default)
    /// re-enters the §5.3 selector recursively at the leader level —
    /// with the leaders' own `P`, `k`, and the inter-node cost model.
    pub hier_leader_algorithm: Algorithm,
    /// Measurement-calibrated selection: when set, every collective this
    /// config runs reports its measured duration here, and the flat
    /// `Auto` path selects by measurement (with one extra 1-byte
    /// agreement round so per-rank measurement noise can't split the
    /// cluster's pick). `None` keeps the static preset selector.
    /// Usually installed session-wide via
    /// [`crate::Communicator::enable_calibration`] rather than per call.
    pub calibration: Option<Arc<ObservedCostModel>>,
    /// Escape hatch routing the classic sparse schedules through their
    /// δ-switching variants: with this set, an explicit
    /// [`Algorithm::SsarRecDbl`] request runs
    /// [`crate::ssar_adaptive_switch`] and
    /// [`Algorithm::SsarSplitAllgather`] runs
    /// [`crate::ssar_split_allgather_adaptive`] — same schedules, but the
    /// representation may switch dense mid-collective once the projected
    /// union crosses δ.
    pub adaptive: bool,
}

impl Default for AllreduceConfig {
    fn default() -> Self {
        AllreduceConfig {
            policy: DensityPolicy::default(),
            quant: None,
            quant_seed: 0x005b_ac31,
            blocking_split_sends: true,
            topology: None,
            topology_cost: None,
            hier_leader_algorithm: Algorithm::Auto,
            calibration: None,
            adaptive: false,
        }
    }
}

/// Resolves [`Algorithm::Auto`] for this call: ranks agree on the maximum
/// per-rank non-zero count with one tiny (8-byte) allgather — local Top-k
/// streams can have slightly different sizes under error feedback, and a
/// per-rank choice could diverge and deadlock the schedule — then run the
/// workload through the §5.3 selector. With a non-trivial
/// [`AllreduceConfig::topology`], the topology-aware selector also prices
/// the two-level hierarchical schedule and may pick it.
fn resolve_auto<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
    allow_hierarchical: bool,
) -> Result<(Algorithm, usize), CollError> {
    let _span = obs::span(obs::Category::Agreement, "auto-resolve");
    let p = ep.size();
    let n = input.dim();
    let mut k = input.stored_len().max(1) as u64;
    if p > 1 {
        let op_id = ep.next_op_id();
        let blocks = allgather_bytes(ep, op_id, Bytes::from(k.to_le_bytes().to_vec()), pool)?;
        for block in blocks {
            let bytes: [u8; 8] = block
                .as_ref()
                .try_into()
                .map_err(|_| CollError::Invalid("malformed k-agreement block".into()))?;
            k = k.max(u64::from_le_bytes(bytes));
        }
    }
    let k_agreed = k as usize;
    if allow_hierarchical {
        if let Some(topo) = cfg.topology.as_ref() {
            // A mismatched topology is a configuration error, not a hint
            // to drop: silently running flat would defeat the knob (the
            // same mismatch errors on an explicit Hierarchical request).
            if topo.size() != p {
                return Err(CollError::Invalid(format!(
                    "topology covers {} ranks but the communicator has {p}",
                    topo.size()
                )));
            }
            if !topo.is_trivial() {
                let tcm = crate::hierarchical::effective_topology_cost(ep, cfg)?;
                let algo =
                    crate::selector::select_algorithm_with_topology::<V>(topo, n, k_agreed, &tcm);
                return Ok((algo, k_agreed));
            }
        }
    }
    // Calibrated path (flat regimes only): pick by measurement, then
    // agree — per-rank measurement noise must not split the schedule.
    if let Some(cal) = cfg.calibration.as_ref() {
        let pick = cal.select::<V>(p, n, k_agreed);
        return Ok((agree_algorithm(ep, pick, pool)?, k_agreed));
    }
    Ok((
        crate::selector::select_algorithm::<V>(p, n, k_agreed, ep.cost()),
        k_agreed,
    ))
}

/// Cluster-wide agreement on a calibrated pick: every rank proposes the
/// candidate it measured fastest; the smallest index in
/// [`Algorithm::ALL`] wins everywhere. One 1-byte allgather.
fn agree_algorithm<T: Transport>(
    ep: &mut T,
    pick: Algorithm,
    pool: &mut BufferPool,
) -> Result<Algorithm, CollError> {
    if ep.size() <= 1 {
        return Ok(pick);
    }
    let mut idx = Algorithm::ALL
        .iter()
        .position(|a| *a == pick)
        .expect("calibrated picks are concrete flat algorithms") as u8;
    let op_id = ep.next_op_id();
    let blocks = allgather_bytes(ep, op_id, Bytes::from(vec![idx]), pool)?;
    for block in blocks {
        let [b]: [u8; 1] = block
            .as_ref()
            .try_into()
            .map_err(|_| CollError::Invalid("malformed algorithm-agreement block".into()))?;
        if (b as usize) < Algorithm::ALL.len() {
            idx = idx.min(b);
        } else {
            return Err(CollError::Invalid(format!(
                "algorithm-agreement block carries unknown candidate index {b}"
            )));
        }
    }
    Ok(Algorithm::ALL[idx as usize])
}

/// Internal dispatcher behind the [`crate::Communicator`] builders.
///
/// Besides routing, this is the stack's measurement point: the concrete
/// schedule's execution is wrapped in a `collective` span and timed via
/// the transport clock (virtual seconds on [`sparcml_net::Endpoint`],
/// wall seconds on the socket transports). Durations land in the global
/// [`sparcml_obs::metrics::global`] registry keyed by
/// `(algorithm, backend, size-class)` — surfacing through
/// [`crate::Communicator::stats_report`] and serve's `/metrics` — and,
/// when [`AllreduceConfig::calibration`] is set, feed the
/// [`ObservedCostModel`] that future `Auto` picks consult.
pub(crate) fn dispatch<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    algo: Algorithm,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let (algo, k) = if algo.is_auto() {
        resolve_auto::<T, V>(ep, input, cfg, pool, true)?
    } else {
        (algo, input.stored_len().max(1))
    };
    let mut span = obs::span_with(obs::Category::Collective, algo.name(), k as u64);
    // Per-collective wait marks: the per-peer deltas accumulated during
    // this schedule decide which peer arrived last (straggler blame).
    let marks = obs::telemetry::peer_wait_marks();
    let start = ep.clock();
    let result = if algo == Algorithm::Hierarchical {
        crate::hierarchical::hierarchical_allreduce_pooled(ep, input, cfg, pool)
    } else {
        dispatch_flat_concrete(ep, input, algo, cfg, pool)
    };
    let elapsed = ep.clock() - start;
    if let Ok(out) = result.as_ref() {
        obs::metrics::global().record(algo.name(), ep.backend_name(), k, elapsed);
        if let Some(cal) = cfg.calibration.as_ref() {
            cal.record::<V>(algo, ep.size(), input.dim(), k, elapsed);
        }
        if obs::telemetry::enabled() {
            obs::telemetry::note_worst_peer(&marks);
            obs::telemetry::record_density(input.dim(), input.nnz(), out.nnz(), out.is_dense());
        }
    } else {
        span.cancel();
    }
    result
}

/// Flat-only dispatcher: like [`dispatch`] but never enters the
/// hierarchical schedule — `Auto` (and a stray `Hierarchical`) resolve
/// among the flat candidates only. The hierarchical collective routes its
/// leader stage through this, which also bounds the compiler's
/// `GroupTransport` nesting at one level per hierarchical call instead of
/// recursing forever at monomorphization time.
pub(crate) fn dispatch_flat<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    algo: Algorithm,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let algo = match algo {
        Algorithm::Auto | Algorithm::Hierarchical => {
            resolve_auto::<T, V>(ep, input, cfg, pool, false)?.0
        }
        concrete => concrete,
    };
    dispatch_flat_concrete(ep, input, algo, cfg, pool)
}

/// The concrete-schedule jump table shared by [`dispatch`] (which times
/// around it) and [`dispatch_flat`] (the hierarchical leader stage,
/// deliberately untimed so a two-level call records exactly once).
fn dispatch_flat_concrete<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    algo: Algorithm,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    match algo {
        Algorithm::Auto | Algorithm::Hierarchical => {
            unreachable!("flat resolution yields a concrete flat algorithm")
        }
        Algorithm::SsarRecDbl if cfg.adaptive => ssar_adaptive_switch_pooled(ep, input, cfg, pool),
        Algorithm::SsarRecDbl => ssar_recursive_double_pooled(ep, input, cfg, pool),
        Algorithm::SsarSplitAllgather if cfg.adaptive => {
            ssar_split_allgather_adaptive_pooled(ep, input, cfg, pool)
        }
        Algorithm::SsarSplitAllgather => ssar_split_allgather_pooled(ep, input, cfg, pool),
        Algorithm::AdaptiveSwitch => ssar_adaptive_switch_pooled(ep, input, cfg, pool),
        Algorithm::DsarSplitAllgather => dsar_split_allgather_pooled(ep, input, cfg, pool),
        Algorithm::DenseRecDbl => dense_recursive_double_pooled(ep, input, cfg, pool),
        Algorithm::DenseRabenseifner => dense_rabenseifner_pooled(ep, input, cfg, pool),
        Algorithm::DenseRing => dense_ring_pooled(ep, input, cfg, pool),
        Algorithm::SparseRing => sparse_ring_pooled(ep, input, cfg, pool),
    }
}
