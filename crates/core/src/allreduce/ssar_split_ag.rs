//! `SSAR_Split_allgather` — split + sparse allgather allreduce (§5.3.2).
//!
//! Phase 1 (*split*): the index space `[0, N)` is partitioned uniformly
//! across ranks; every rank splits its sparse vector and sends each
//! subrange directly to its owner. Each owner reduces the `P` received
//! sub-vectors, producing the final result for its partition.
//!
//! Phase 2 (*sparse allgather*): partition results are gathered to all
//! ranks with a concatenating sparse allgather (partitions are disjoint
//! index ranges, so the "sum" is concatenation, §5.1).
//!
//! Latency is `L2(P) = (P−1)α + log2(P)α`; bandwidth lies between
//! `2·(P−1)/P·k·βs` and `P·k·βs`.

use sparcml_net::Transport;
use sparcml_stream::{delta_raw, partition_range, Repr, Scalar, SparseStream};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{
    add_charged, allgather_bytes, recv_stream, send_stream_range, subtag, tag, BufferPool,
};

/// Runs the split phase: scatter sub-ranges to their owners and reduce the
/// local partition. Returns this rank's fully reduced partition (support
/// restricted to its range, logical dimension preserved). Each sub-range
/// frame is encoded straight from a borrowed slab view into a pooled
/// buffer — no intermediate stream, no per-message allocation.
pub(crate) fn split_reduce_partition<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    op_id: u64,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    let rank = ep.rank();
    let dim = input.dim();
    // Scatter: walk destinations round-robin starting after our own rank so
    // senders do not all hammer rank 0 first.
    for step in 1..p {
        let dst = (rank + step) % p;
        let range = partition_range(dim, p, dst);
        send_stream_range(
            ep,
            dst,
            tag(op_id, subtag::SPLIT),
            input,
            range,
            cfg.blocking_split_sends,
            pool,
        )?;
    }
    let my_range = partition_range(dim, p, rank);
    let mut acc = input.restrict(my_range.lo, my_range.hi);
    // Gather and reduce the P−1 remote contributions in rank order for
    // deterministic floating-point results.
    for src in 0..p {
        if src == rank {
            continue;
        }
        let part = recv_stream::<_, V>(ep, src, tag(op_id, subtag::SPLIT), pool)?;
        add_charged(ep, &mut acc, &part, &cfg.policy)?;
    }
    Ok(acc)
}

/// Sparse split + sparse allgather allreduce. Works for any `P ≥ 1`.
pub fn ssar_split_allgather<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    ssar_split_allgather_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`ssar_split_allgather`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn ssar_split_allgather_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    let mut mine = split_reduce_partition(ep, input, cfg, op_id, pool)?;
    // The partition result must be sparse for the concatenating allgather;
    // if fill-in forced it dense (the caller should have chosen DSAR), we
    // convert back, paying the scan.
    if mine.is_dense() {
        ep.compute(mine.dim());
        mine.sparsify();
    }
    let mut buf = pool.acquire();
    mine.encode_into(&mut buf);
    let blocks = allgather_bytes(ep, op_id, bytes::Bytes::from(buf), pool)?;
    let parts: Vec<SparseStream<V>> = blocks
        .iter()
        .map(|b| SparseStream::decode(b))
        .collect::<Result<_, _>>()?;
    // Partitions arrive indexed by rank == increasing index ranges.
    let result = SparseStream::concat_disjoint(&parts)?;
    ep.compute(result.stored_len());
    Ok(result)
}

/// `SSAR_Split_allgather` with the in-collective δ-switch
/// ([`crate::Algorithm::AdaptiveSwitch`] escape hatch for the split
/// schedule): instead of forcing every partition result back to the
/// sparse representation for the allgather, each owner ships its
/// partition in whatever representation the reduce produced — a
/// policy-densified partition goes out as a dense *range slice*
/// (`range.len()·isize` bytes, never the quadratic sparse fill-in
/// encoding). The v2 wire frames are self-describing, so receivers
/// decode mixed blocks without negotiation, and since the allgather
/// hands every rank the identical block set, the final assembly
/// decision — go dense when any block is dense or the summed block nnz
/// crosses the paper's raw δ — is rank-agreed for free.
pub fn ssar_split_allgather_adaptive<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    ssar_split_allgather_adaptive_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`ssar_split_allgather_adaptive`] routing its frames through a
/// caller-owned pool (the communicator's persistent session pool).
pub(crate) fn ssar_split_allgather_adaptive_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let dim = input.dim();
    let op_id = ep.next_op_id();
    let mine = split_reduce_partition(ep, input, cfg, op_id, pool)?;
    let my_range = partition_range(dim, p, ep.rank());
    let mut buf = pool.acquire();
    if let Repr::Dense(values) = mine.repr() {
        // Fill-in densified this partition: ship just its range slice
        // densely instead of paying the sparsify scan + index slabs.
        SparseStream::encode_dense_slice_into(
            &values[my_range.lo as usize..my_range.hi as usize],
            &mut buf,
        );
        ep.stats_mut().switch_rounds += 1;
    } else {
        mine.encode_into(&mut buf);
    }
    let blocks = allgather_bytes(ep, op_id, bytes::Bytes::from(buf), pool)?;
    let parts: Vec<SparseStream<V>> = blocks
        .iter()
        .map(|b| SparseStream::decode(b))
        .collect::<Result<_, _>>()?;
    // Every rank decodes the identical block set, so this classification
    // — and with it the output representation — is agreed everywhere.
    let any_dense = parts.iter().any(|part| part.is_dense());
    let nnz_total: usize = parts.iter().map(SparseStream::stored_len).sum();
    if any_dense || nnz_total > delta_raw::<V>(dim) {
        let mut values = vec![V::zero(); dim];
        for (r, part) in parts.iter().enumerate() {
            // Dense blocks are range slices (their dim is the range
            // length, written at the owner's offset); sparse blocks keep
            // the full logical dimension and absolute indices.
            let offset = if part.is_dense() {
                partition_range(dim, p, r).lo as usize
            } else {
                0
            };
            part.write_to_dense(&mut values, offset);
        }
        ep.stats_mut().adaptive_densified += 1;
        ep.compute(dim);
        Ok(SparseStream::from_dense(values))
    } else {
        // Partitions arrive indexed by rank == increasing index ranges.
        let result = SparseStream::concat_disjoint(&parts)?;
        ep.compute(result.stored_len());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_net::{max_virtual_time, run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    fn check(p: usize, dim: usize, nnz: usize) {
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, nnz, 7 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_split_allgather(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn correct_power_of_two() {
        check(8, 4096, 64);
    }

    #[test]
    fn correct_non_power_of_two() {
        check(5, 1000, 40);
        check(6, 2048, 32);
    }

    #[test]
    fn correct_overlapping_supports() {
        // All ranks share the same support: K = k.
        let p = 8;
        let dim = 1 << 14;
        let base = random_sparse::<f32>(dim, 100, 42);
        let expect = reference_sum(&vec![base.clone(); p]);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_split_allgather(ep, &base, &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            assert_eq!(out.nnz(), 100);
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    fn check_adaptive(p: usize, dim: usize, nnz: usize) {
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, nnz, 7 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_split_allgather_adaptive(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn adaptive_matches_reference() {
        check_adaptive(8, 4096, 64);
        check_adaptive(5, 1000, 40);
        check_adaptive(1, 128, 8);
    }

    #[test]
    fn adaptive_densifies_when_summed_nnz_crosses_delta() {
        // Disjoint supports aligned to the partitions: every block stays
        // sparse, but Σnnz = 1024 > δ = 512 — assembly goes dense.
        let p = 8;
        let dim = 1024;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let lo = (ep.rank() * 128) as u32;
            let pairs: Vec<(u32, f32)> = (lo..lo + 128).map(|i| (i, 1.0f32)).collect();
            let input = SparseStream::from_pairs(dim, &pairs).unwrap();
            let out =
                ssar_split_allgather_adaptive(ep, &input, &AllreduceConfig::default()).unwrap();
            let stats = ep.stats().snapshot();
            (out, stats.adaptive_densified, stats.switch_rounds)
        });
        for (out, densified, dense_sends) in outs {
            assert!(out.is_dense(), "agreed final repr must be dense");
            assert!(out.to_dense_vec().iter().all(|&v| v == 1.0));
            assert_eq!(densified, 1);
            assert_eq!(dense_sends, 0, "every partition block stayed sparse");
        }
    }

    #[test]
    fn adaptive_ships_densified_partition_as_range_slice() {
        // Rank 0's partition fills in past δ during the reduce (300 + 300
        // stored > 512), so its owner ships a dense range slice; rank 1's
        // partition is empty and stays sparse. Mixed blocks must still
        // assemble to the exact sum on both ranks.
        let p = 2;
        let dim = 1024;
        let supports = [(0u32, 300u32), (200, 500)];
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let (lo, hi) = supports[ep.rank()];
            let pairs: Vec<(u32, f32)> = (lo..hi).map(|i| (i, 1.0f32)).collect();
            let input = SparseStream::from_pairs(dim, &pairs).unwrap();
            let out =
                ssar_split_allgather_adaptive(ep, &input, &AllreduceConfig::default()).unwrap();
            let stats = ep.stats().snapshot();
            (
                ep.rank(),
                out,
                stats.adaptive_densified,
                stats.switch_rounds,
            )
        });
        for (rank, out, densified, dense_sends) in outs {
            assert!(out.is_dense());
            let got = out.to_dense_vec();
            for (i, v) in got.iter().enumerate() {
                let expect = match i {
                    0..=199 => 1.0,
                    200..=299 => 2.0,
                    300..=499 => 1.0,
                    _ => 0.0,
                };
                assert_eq!(*v, expect, "index {i}");
            }
            assert_eq!(densified, 1);
            let expect_dense_sends = if rank == 0 { 1 } else { 0 };
            assert_eq!(dense_sends, expect_dense_sends, "rank {rank}");
        }
    }

    #[test]
    fn adaptive_stays_sparse_below_delta() {
        let p = 4;
        let dim = 4096;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let input = SparseStream::from_pairs(dim, &[(7, 1.0f32), (4000, 2.0)]).unwrap();
            let out =
                ssar_split_allgather_adaptive(ep, &input, &AllreduceConfig::default()).unwrap();
            let stats = ep.stats().snapshot();
            (out, stats.adaptive_densified, stats.switch_rounds)
        });
        for (out, densified, dense_sends) in outs {
            assert!(out.is_sparse());
            assert_eq!(out.get(7), 4.0);
            assert_eq!(out.get(4000), 8.0);
            assert_eq!(densified, 0);
            assert_eq!(dense_sends, 0);
        }
    }

    #[test]
    fn latency_matches_l2() {
        // Empty inputs isolate latency: (P−1)α for the split (blocking
        // sends) + log2(P)α for the allgather.
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let t = max_virtual_time(p, cost, |ep| {
            let input = SparseStream::<f32>::zeros(1 << 16);
            ssar_split_allgather(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        let l2 = (p - 1) as f64 + (p as f64).log2();
        assert!((t - l2).abs() < 1e-9, "t = {t}, L2 = {l2}");
    }

    #[test]
    fn nonblocking_split_reduces_latency() {
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.1,
        };
        let p = 8;
        let blocking = AllreduceConfig {
            blocking_split_sends: true,
            ..Default::default()
        };
        let nonblocking = AllreduceConfig {
            blocking_split_sends: false,
            ..Default::default()
        };
        let t_b = max_virtual_time(p, cost, |ep| {
            ssar_split_allgather(ep, &SparseStream::<f32>::zeros(1 << 16), &blocking).unwrap();
        });
        let t_nb = max_virtual_time(p, cost, |ep| {
            ssar_split_allgather(ep, &SparseStream::<f32>::zeros(1 << 16), &nonblocking).unwrap();
        });
        assert!(t_nb < t_b, "nonblocking {t_nb} should beat blocking {t_b}");
    }
}
