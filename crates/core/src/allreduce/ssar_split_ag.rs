//! `SSAR_Split_allgather` — split + sparse allgather allreduce (§5.3.2).
//!
//! Phase 1 (*split*): the index space `[0, N)` is partitioned uniformly
//! across ranks; every rank splits its sparse vector and sends each
//! subrange directly to its owner. Each owner reduces the `P` received
//! sub-vectors, producing the final result for its partition.
//!
//! Phase 2 (*sparse allgather*): partition results are gathered to all
//! ranks with a concatenating sparse allgather (partitions are disjoint
//! index ranges, so the "sum" is concatenation, §5.1).
//!
//! Latency is `L2(P) = (P−1)α + log2(P)α`; bandwidth lies between
//! `2·(P−1)/P·k·βs` and `P·k·βs`.

use sparcml_net::Transport;
use sparcml_stream::{partition_range, Scalar, SparseStream};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{
    add_charged, allgather_bytes, recv_stream, send_stream_range, subtag, tag, BufferPool,
};

/// Runs the split phase: scatter sub-ranges to their owners and reduce the
/// local partition. Returns this rank's fully reduced partition (support
/// restricted to its range, logical dimension preserved). Each sub-range
/// frame is encoded straight from a borrowed slab view into a pooled
/// buffer — no intermediate stream, no per-message allocation.
pub(crate) fn split_reduce_partition<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    op_id: u64,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    let rank = ep.rank();
    let dim = input.dim();
    // Scatter: walk destinations round-robin starting after our own rank so
    // senders do not all hammer rank 0 first.
    for step in 1..p {
        let dst = (rank + step) % p;
        let range = partition_range(dim, p, dst);
        send_stream_range(
            ep,
            dst,
            tag(op_id, subtag::SPLIT),
            input,
            range,
            cfg.blocking_split_sends,
            pool,
        )?;
    }
    let my_range = partition_range(dim, p, rank);
    let mut acc = input.restrict(my_range.lo, my_range.hi);
    // Gather and reduce the P−1 remote contributions in rank order for
    // deterministic floating-point results.
    for src in 0..p {
        if src == rank {
            continue;
        }
        let part = recv_stream::<_, V>(ep, src, tag(op_id, subtag::SPLIT), pool)?;
        add_charged(ep, &mut acc, &part, &cfg.policy)?;
    }
    Ok(acc)
}

/// Sparse split + sparse allgather allreduce. Works for any `P ≥ 1`.
pub fn ssar_split_allgather<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    ssar_split_allgather_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`ssar_split_allgather`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn ssar_split_allgather_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    let mut mine = split_reduce_partition(ep, input, cfg, op_id, pool)?;
    // The partition result must be sparse for the concatenating allgather;
    // if fill-in forced it dense (the caller should have chosen DSAR), we
    // convert back, paying the scan.
    if mine.is_dense() {
        ep.compute(mine.dim());
        mine.sparsify();
    }
    let mut buf = pool.acquire();
    mine.encode_into(&mut buf);
    let blocks = allgather_bytes(ep, op_id, bytes::Bytes::from(buf), pool)?;
    let parts: Vec<SparseStream<V>> = blocks
        .iter()
        .map(|b| SparseStream::decode(b))
        .collect::<Result<_, _>>()?;
    // Partitions arrive indexed by rank == increasing index ranges.
    let result = SparseStream::concat_disjoint(&parts)?;
    ep.compute(result.stored_len());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_net::{max_virtual_time, run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    fn check(p: usize, dim: usize, nnz: usize) {
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, nnz, 7 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_split_allgather(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn correct_power_of_two() {
        check(8, 4096, 64);
    }

    #[test]
    fn correct_non_power_of_two() {
        check(5, 1000, 40);
        check(6, 2048, 32);
    }

    #[test]
    fn correct_overlapping_supports() {
        // All ranks share the same support: K = k.
        let p = 8;
        let dim = 1 << 14;
        let base = random_sparse::<f32>(dim, 100, 42);
        let expect = reference_sum(&vec![base.clone(); p]);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_split_allgather(ep, &base, &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            assert_eq!(out.nnz(), 100);
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn latency_matches_l2() {
        // Empty inputs isolate latency: (P−1)α for the split (blocking
        // sends) + log2(P)α for the allgather.
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let t = max_virtual_time(p, cost, |ep| {
            let input = SparseStream::<f32>::zeros(1 << 16);
            ssar_split_allgather(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        let l2 = (p - 1) as f64 + (p as f64).log2();
        assert!((t - l2).abs() < 1e-9, "t = {t}, L2 = {l2}");
    }

    #[test]
    fn nonblocking_split_reduces_latency() {
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.1,
        };
        let p = 8;
        let blocking = AllreduceConfig {
            blocking_split_sends: true,
            ..Default::default()
        };
        let nonblocking = AllreduceConfig {
            blocking_split_sends: false,
            ..Default::default()
        };
        let t_b = max_virtual_time(p, cost, |ep| {
            ssar_split_allgather(ep, &SparseStream::<f32>::zeros(1 << 16), &blocking).unwrap();
        });
        let t_nb = max_virtual_time(p, cost, |ep| {
            ssar_split_allgather(ep, &SparseStream::<f32>::zeros(1 << 16), &nonblocking).unwrap();
        });
        assert!(t_nb < t_b, "nonblocking {t_nb} should beat blocking {t_b}");
    }
}
