//! Sparse ring allreduce — the "sparse counterpart" of the ring-based MPI
//! dense allreduce that Fig. 3 compares against.
//!
//! Identical schedule to [`crate::allreduce::dense_ring`] (P−1
//! reduce-scatter steps + P−1 allgather steps over dimension partitions)
//! but every partition travels in sparse stream format, so step cost
//! scales with partition fill rather than `N/P`.

use sparcml_net::Transport;
use sparcml_stream::{partition_range, Scalar, SparseStream};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{add_charged, recv_stream, send_stream, subtag, tag, BufferPool};

/// Sparse ring allreduce. Works for any `P ≥ 1`.
pub fn sparse_ring<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    sparse_ring_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`sparse_ring`] routing its frames through a caller-owned pool (the
/// communicator's persistent session pool).
pub(crate) fn sparse_ring_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    let rank = ep.rank();
    let dim = input.dim();
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;

    // Per-partition sparse accumulators.
    let mut parts: Vec<SparseStream<V>> = (0..p)
        .map(|j| {
            let r = partition_range(dim, p, j);
            input.restrict(r.lo, r.hi)
        })
        .collect();

    // Reduce-scatter: partition j starts at rank j and accumulates while
    // travelling the ring; after P−1 steps rank r owns partition (r+1)%p.
    for step in 0..p - 1 {
        let send_idx = (rank + p - step) % p;
        let recv_idx = (rank + p - step - 1) % p;
        let t = tag(op_id, subtag::RING + ((step as u64) << 8));
        send_stream(ep, next, t, &parts[send_idx], true, pool)?;
        let incoming = recv_stream::<_, V>(ep, prev, t, pool)?;
        let acc = &mut parts[recv_idx];
        add_charged(ep, acc, &incoming, &cfg.policy)?;
    }
    // Partitions must be sparse for the concatenation at the end.
    let owned = (rank + 1) % p;
    if parts[owned].is_dense() {
        ep.compute(dim);
        parts[owned].sparsify();
    }
    // Allgather: circulate the reduced partitions.
    for step in 0..p - 1 {
        let send_idx = (rank + 1 + p - step) % p;
        let recv_idx = (rank + p - step) % p;
        let t = tag(op_id, subtag::RING + 1 + ((step as u64) << 8));
        send_stream(ep, next, t, &parts[send_idx], true, pool)?;
        parts[recv_idx] = recv_stream::<_, V>(ep, prev, t, pool)?;
    }
    let result = SparseStream::concat_disjoint(&parts)?;
    ep.compute(result.stored_len());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::dense_ring;
    use crate::reference::reference_sum;
    use sparcml_net::{max_virtual_time, run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    fn check(p: usize, dim: usize, nnz: usize) {
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, nnz, 55 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            sparse_ring(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn correct_various_sizes() {
        check(8, 4096, 64);
        check(5, 1000, 50);
        check(2, 100, 10);
        check(1, 64, 4);
    }

    #[test]
    fn sparse_ring_cheaper_than_dense_ring_at_low_density() {
        let cost = CostModel {
            alpha: 0.0,
            beta: 1e-6,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let dim = 1 << 14;
        let ins: Vec<SparseStream<f32>> =
            (0..p).map(|r| random_sparse(dim, 64, r as u64)).collect();
        let t_sparse = max_virtual_time(p, cost, |ep| {
            sparse_ring(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap();
        });
        let t_dense = max_virtual_time(p, cost, |ep| {
            dense_ring(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap();
        });
        assert!(
            t_sparse * 4.0 < t_dense,
            "sparse ring {t_sparse} should be ≫ cheaper than dense ring {t_dense}"
        );
    }
}
