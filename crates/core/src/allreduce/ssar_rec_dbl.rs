//! `SSAR_Recursive_double` — sparse recursive doubling allreduce (§5.3.1).
//!
//! "In the first round, nodes that are a distance 1 apart exchange their
//! data and perform a local sparse stream reduction. In the second round,
//! nodes that are a distance 2 apart exchange their reduced data. [...]
//! in the t-th round, nodes that are a distance 2^{t−1} apart exchange all
//! the previously reduced 2^{t−1}·k data items."
//!
//! Latency is the data-independent optimum `log2(P)·α`; the bandwidth term
//! varies between `log2(P)·k·βs` (fully overlapping supports) and
//! `(P−1)·k·βs` (disjoint supports).

use sparcml_net::Transport;
use sparcml_stream::{delta_raw, project_union_bound, DensityPolicy, Scalar, SparseStream};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{
    add_charged, exchange_stream, exchange_stream_with_bound, fold_to_pow2, pow2_below, subtag,
    tag, unfold_result, BufferPool, FoldRole,
};

/// Sparse recursive-doubling allreduce. Handles any `P ≥ 1` via the §A
/// fold-to-power-of-two pre/post steps.
pub fn ssar_recursive_double<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    ssar_recursive_double_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`ssar_recursive_double`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn ssar_recursive_double_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    let role = fold_to_pow2(ep, op_id, input, &cfg.policy, pool)?;
    let result = match role {
        FoldRole::Active(mut acc) => {
            let p2 = pow2_below(p);
            let rounds = p2.trailing_zeros() as usize;
            let rank = ep.rank();
            for t in 0..rounds {
                let peer = rank ^ (1 << t);
                let theirs =
                    exchange_stream(ep, peer, tag(op_id, subtag::ROUND + t as u64), &acc, pool)?;
                add_charged(ep, &mut acc, &theirs, &cfg.policy)?;
            }
            unfold_result(ep, op_id, Some(acc), pool)?
        }
        FoldRole::Parked => unfold_result::<_, V>(ep, op_id, None, pool)?,
    };
    Ok(result)
}

/// Header word piggybacked on every adaptive frame: the sender's union
/// size in the low 63 bits, its δ-switch state in the top bit.
const SWITCHED_BIT: u64 = 1 << 63;

/// `SSAR_Recursive_double` with the in-collective δ-switch
/// ([`crate::Algorithm::AdaptiveSwitch`]): instead of committing to the
/// sparse representation for the whole schedule, every merge round
/// tracks the *running union size* and piggybacks it (plus the switch
/// state) on the frame header. Partners that merge the same two sparse
/// operands hold identical stored sets afterwards, so the realized
/// union is pairwise-agreed and — by induction over the recursive-
/// doubling subcubes — uniform within every subcube. The per-round
/// growth rate of that union projects the end-of-collective union
/// ([`project_union_bound`]); once the projection crosses the paper's
/// raw δ threshold, the *remaining* rounds run on the dense
/// representation, capping each later frame at `N·isize` bytes instead
/// of letting fill-in push sparse frames past it.
///
/// Every repr decision is a symmetric function of exchanged state (the
/// switch state ORs across partners, the union update uses only the two
/// exchanged words and the shared merge result), the wire frames are
/// self-describing (v2 carries a repr tag), and the final round's
/// projection is exact (`remaining = 0`), so after the last round every
/// active rank holds the identical switch state — the output repr is
/// rank-agreed without a closing agreement round (parked ranks receive
/// it over the self-describing unfold frame).
pub fn ssar_adaptive_switch<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    ssar_adaptive_switch_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`ssar_adaptive_switch`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn ssar_adaptive_switch_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let dim = input.dim();
    let delta = delta_raw::<V>(dim);
    let op_id = ep.next_op_id();
    let role = fold_to_pow2(ep, op_id, input, &cfg.policy, pool)?;
    // Merges inside the adaptive schedule never densify on their own —
    // the δ-switch below owns every repr transition, keeping "dense ⇔
    // switched" an invariant the agreement argument relies on.
    let merge_policy = DensityPolicy::never_densify();
    let result = match role {
        FoldRole::Active(mut acc) => {
            let p2 = pow2_below(p);
            let rounds = p2.trailing_zeros() as usize;
            let rank = ep.rank();
            let mut union = acc.stored_len().min(dim);
            let mut switched = false;
            // Pre-round check: an input already past δ (including an acc
            // the fold step densified) switches before round 0.
            if union > delta {
                switched = true;
                ep.stats_mut().adaptive_densified += 1;
            }
            if switched && !acc.is_dense() {
                ep.compute(acc.stored_len());
                acc.densify();
            }
            for t in 0..rounds {
                let peer = rank ^ (1 << t);
                if switched {
                    ep.stats_mut().switch_rounds += 1;
                }
                let word = union as u64 | if switched { SWITCHED_BIT } else { 0 };
                let (theirs, their_word) = exchange_stream_with_bound(
                    ep,
                    peer,
                    tag(op_id, subtag::ROUND + t as u64),
                    &acc,
                    word,
                    pool,
                )?;
                let their_union = (their_word & !SWITCHED_BIT) as usize;
                let their_switched = their_word & SWITCHED_BIT != 0;
                add_charged(ep, &mut acc, &theirs, &merge_policy)?;
                // `before` must be symmetric so both partners project the
                // same growth rate; the union after the merge covers at
                // least the larger of the two halves.
                let before = union.max(their_union);
                let bound_sum = union.saturating_add(their_union).min(dim);
                let mut now_switched = switched || their_switched;
                union = if now_switched || acc.is_dense() {
                    // A dense operand hides the realized union; fall back
                    // to the additive fill-in bound (still symmetric).
                    bound_sum
                } else {
                    // Both operands were sparse: the merged stored set is
                    // identical on both partners, so its size is agreed.
                    acc.stored_len().min(bound_sum)
                };
                let remaining = rounds - t - 1;
                if !now_switched && project_union_bound(before, union, remaining, dim) > delta {
                    now_switched = true;
                }
                if now_switched && !switched {
                    switched = true;
                    ep.stats_mut().adaptive_densified += 1;
                    if !acc.is_dense() {
                        ep.compute(acc.stored_len());
                        acc.densify();
                    }
                }
            }
            // No closing normalization: the last round's projection is
            // exact (`remaining = 0` returns the realized union), so
            // `switched` ⇔ `union > δ` ⇔ dense, agreed on every rank.
            unfold_result(ep, op_id, Some(acc), pool)?
        }
        FoldRole::Parked => unfold_result::<_, V>(ep, op_id, None, pool)?,
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_net::{run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    fn inputs(p: usize, dim: usize, nnz: usize) -> Vec<SparseStream<f32>> {
        (0..p)
            .map(|r| random_sparse(dim, nnz, 100 + r as u64))
            .collect()
    }

    fn check(p: usize, dim: usize, nnz: usize) {
        let ins = inputs(p, dim, nnz);
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_recursive_double(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn correct_power_of_two() {
        check(8, 4096, 64);
    }

    #[test]
    fn correct_non_power_of_two() {
        check(6, 2048, 32);
        check(3, 512, 16);
    }

    #[test]
    fn correct_single_rank() {
        check(1, 128, 8);
    }

    #[test]
    fn densifies_on_fill_in() {
        // Disjoint supports: K = P·k = 8·128 = 1024 > δ = 512 for dim 1024.
        let p = 8;
        let dim = 1024;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let lo = (ep.rank() * 128) as u32;
            let pairs: Vec<(u32, f32)> = (lo..lo + 128).map(|i| (i, 1.0f32)).collect();
            let input = SparseStream::from_pairs(dim, &pairs).unwrap();
            ssar_recursive_double(ep, &input, &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            assert!(out.is_dense(), "result should have switched to dense");
            assert!(out.to_dense_vec().iter().all(|&v| v == 1.0));
        }
    }

    fn check_adaptive(p: usize, dim: usize, nnz: usize) {
        let ins = inputs(p, dim, nnz);
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_adaptive_switch(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn adaptive_matches_reference() {
        check_adaptive(8, 4096, 64);
        check_adaptive(6, 2048, 32);
        check_adaptive(3, 512, 16);
        check_adaptive(1, 128, 8);
    }

    #[test]
    fn adaptive_switches_midway_on_disjoint_fill_in() {
        // Rank pairs (2b, 2b+1) share a 129-wide block; blocks are
        // disjoint. Round 0 merges identical supports (no growth → no
        // switch), round 1 merges disjoint blocks: rate 2 projects
        // 4·129 = 516 > δ = 512 — the switch fires mid-collective and
        // round 2 runs dense.
        let p = 8;
        let dim = 1024;
        let k = 129u32;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let lo = (ep.rank() as u32 / 2) * k;
            let pairs: Vec<(u32, f32)> = (lo..lo + k).map(|i| (i, 1.0f32)).collect();
            let input = SparseStream::from_pairs(dim, &pairs).unwrap();
            let out = ssar_adaptive_switch(ep, &input, &AllreduceConfig::default()).unwrap();
            let stats = ep.stats().snapshot();
            (out, stats.adaptive_densified, stats.switch_rounds)
        });
        for (out, densified, rounds) in outs {
            assert!(out.is_dense(), "agreed final repr must be dense");
            let got = out.to_dense_vec();
            for (i, v) in got.iter().enumerate() {
                let expect = if (i as u32) < 4 * k { 2.0 } else { 0.0 };
                assert_eq!(*v, expect, "index {i}");
            }
            assert_eq!(densified, 1, "the switch fires exactly once");
            assert_eq!(rounds, 1, "only the final round runs dense");
        }
    }

    #[test]
    fn adaptive_never_switches_below_delta() {
        // Tiny overlapping supports: even the disjoint-worst-case bound
        // P·k = 64 stays far below δ = 2048.
        let p = 8;
        let dim = 4096;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let input = SparseStream::from_pairs(dim, &[(7, 1.0f32), (9, 2.0)]).unwrap();
            let out = ssar_adaptive_switch(ep, &input, &AllreduceConfig::default()).unwrap();
            let stats = ep.stats().snapshot();
            (out, stats.adaptive_densified, stats.switch_rounds)
        });
        for (out, densified, rounds) in outs {
            assert!(out.is_sparse(), "no fill-in, result stays sparse");
            assert_eq!(out.nnz(), 2);
            assert_eq!(densified, 0);
            assert_eq!(rounds, 0);
        }
    }

    #[test]
    fn adaptive_switches_at_round_zero_for_dense_inputs() {
        // k = 150 already past δ = 128: the pre-round check fires and
        // every round runs dense.
        let p = 4;
        let dim = 256;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let pairs: Vec<(u32, f32)> = (0..150).map(|i| (i, 1.0f32)).collect();
            let input = SparseStream::from_pairs(dim, &pairs).unwrap();
            let out = ssar_adaptive_switch(ep, &input, &AllreduceConfig::default()).unwrap();
            let stats = ep.stats().snapshot();
            (out, stats.switch_rounds)
        });
        for (out, rounds) in outs {
            assert!(out.is_dense());
            assert_eq!(rounds, 2, "both rounds of P=4 must run dense");
        }
    }

    #[test]
    fn latency_matches_log2p_alpha() {
        // Zero-byte inputs isolate the latency term: log2(P)·α.
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let t = sparcml_net::max_virtual_time(p, cost, |ep| {
            let input = SparseStream::<f32>::zeros(1024);
            ssar_recursive_double(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        // 3 rounds, each α (send) — recv arrival is also α-aligned, so the
        // total equals log2(8) · α = 3... plus the final round's arrival
        // offset. The exchange pattern gives exactly t rounds of (α) send
        // plus arrival at stamp+0: clock = 3α.
        assert!((t - 3.0).abs() < 1e-9, "t = {t}");
    }
}
