//! `SSAR_Recursive_double` — sparse recursive doubling allreduce (§5.3.1).
//!
//! "In the first round, nodes that are a distance 1 apart exchange their
//! data and perform a local sparse stream reduction. In the second round,
//! nodes that are a distance 2 apart exchange their reduced data. [...]
//! in the t-th round, nodes that are a distance 2^{t−1} apart exchange all
//! the previously reduced 2^{t−1}·k data items."
//!
//! Latency is the data-independent optimum `log2(P)·α`; the bandwidth term
//! varies between `log2(P)·k·βs` (fully overlapping supports) and
//! `(P−1)·k·βs` (disjoint supports).

use sparcml_net::Transport;
use sparcml_stream::{Scalar, SparseStream};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{
    add_charged, exchange_stream, fold_to_pow2, pow2_below, subtag, tag, unfold_result, BufferPool,
    FoldRole,
};

/// Sparse recursive-doubling allreduce. Handles any `P ≥ 1` via the §A
/// fold-to-power-of-two pre/post steps.
pub fn ssar_recursive_double<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    ssar_recursive_double_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`ssar_recursive_double`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn ssar_recursive_double_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    if p == 1 {
        return Ok(input.clone());
    }
    let op_id = ep.next_op_id();
    let role = fold_to_pow2(ep, op_id, input, &cfg.policy, pool)?;
    let result = match role {
        FoldRole::Active(mut acc) => {
            let p2 = pow2_below(p);
            let rounds = p2.trailing_zeros() as usize;
            let rank = ep.rank();
            for t in 0..rounds {
                let peer = rank ^ (1 << t);
                let theirs =
                    exchange_stream(ep, peer, tag(op_id, subtag::ROUND + t as u64), &acc, pool)?;
                add_charged(ep, &mut acc, &theirs, &cfg.policy)?;
            }
            unfold_result(ep, op_id, Some(acc), pool)?
        }
        FoldRole::Parked => unfold_result::<_, V>(ep, op_id, None, pool)?,
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_net::{run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    fn inputs(p: usize, dim: usize, nnz: usize) -> Vec<SparseStream<f32>> {
        (0..p)
            .map(|r| random_sparse(dim, nnz, 100 + r as u64))
            .collect()
    }

    fn check(p: usize, dim: usize, nnz: usize) {
        let ins = inputs(p, dim, nnz);
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            ssar_recursive_double(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn correct_power_of_two() {
        check(8, 4096, 64);
    }

    #[test]
    fn correct_non_power_of_two() {
        check(6, 2048, 32);
        check(3, 512, 16);
    }

    #[test]
    fn correct_single_rank() {
        check(1, 128, 8);
    }

    #[test]
    fn densifies_on_fill_in() {
        // Disjoint supports: K = P·k = 8·128 = 1024 > δ = 512 for dim 1024.
        let p = 8;
        let dim = 1024;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let lo = (ep.rank() * 128) as u32;
            let pairs: Vec<(u32, f32)> = (lo..lo + 128).map(|i| (i, 1.0f32)).collect();
            let input = SparseStream::from_pairs(dim, &pairs).unwrap();
            ssar_recursive_double(ep, &input, &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            assert!(out.is_dense(), "result should have switched to dense");
            assert!(out.to_dense_vec().iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn latency_matches_log2p_alpha() {
        // Zero-byte inputs isolate the latency term: log2(P)·α.
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let p = 8;
        let t = sparcml_net::max_virtual_time(p, cost, |ep| {
            let input = SparseStream::<f32>::zeros(1024);
            ssar_recursive_double(ep, &input, &AllreduceConfig::default()).unwrap();
        });
        // 3 rounds, each α (send) — recv arrival is also α-aligned, so the
        // total equals log2(8) · α = 3... plus the final round's arrival
        // offset. The exchange pattern gives exactly t rounds of (α) send
        // plus arrival at stamp+0: clock = 3α.
        assert!((t - 3.0).abs() < 1e-9, "t = {t}");
    }
}
