//! `DSAR_Split_allgather` — the dynamic variant that switches to a dense
//! representation (§5.3.3), with optional low-precision allgather (§6).
//!
//! The split phase is identical to `SSAR_Split_allgather`, but each rank
//! reduces its partition directly into a *dense* partition buffer
//! ("exploit[ing] the fact that every reduced split will become dense").
//! The second stage is then a dense allgather of partition blocks, which
//! can "leverage existing implementations, which are highly optimized".
//! When [`crate::AllreduceConfig::quant`] is set, each partition block is
//! QSGD-quantized before the allgather, shrinking the dense bandwidth term
//! by the quantization factor — this is exactly where the paper applies
//! low precision ("we employ the low-precision data representation only in
//! the second part of the DSAR Split allgather algorithm").

use bytes::Bytes;
use sparcml_net::Transport;
use sparcml_quant::{dequantize, quantize, QuantizedVec};
use sparcml_stream::{partition_range, Scalar, SparseStream, XorShift64};

use crate::allreduce::AllreduceConfig;
use crate::error::CollError;
use crate::op::{allgather_bytes, recv_stream, send_stream_range, subtag, tag, BufferPool};

/// Sparse split + dense (optionally quantized) allgather allreduce.
/// Always returns a dense stream. Works for any `P ≥ 1`.
pub fn dsar_split_allgather<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
) -> Result<SparseStream<V>, CollError> {
    dsar_split_allgather_pooled(ep, input, cfg, &mut BufferPool::new())
}

/// [`dsar_split_allgather`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn dsar_split_allgather_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    cfg: &AllreduceConfig,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    let dim = input.dim();
    if p == 1 {
        let mut out = input.clone();
        out.densify();
        return Ok(out);
    }
    let op_id = ep.next_op_id();
    let rank = ep.rank();

    // --- Split phase: scatter sub-ranges, reduce own partition densely. ---
    for step in 1..p {
        let dst = (rank + step) % p;
        let range = partition_range(dim, p, dst);
        send_stream_range(
            ep,
            dst,
            tag(op_id, subtag::SPLIT),
            input,
            range,
            cfg.blocking_split_sends,
            pool,
        )?;
    }
    let my_range = partition_range(dim, p, rank);
    let block_len = my_range.len();
    let mut block = vec![V::zero(); block_len];
    let scatter = |ep: &mut T, part: &SparseStream<V>, block: &mut [V]| {
        let mut n = 0usize;
        for (idx, val) in part.iter_nonzero() {
            let slot = &mut block[(idx - my_range.lo) as usize];
            *slot = slot.add(val);
            n += 1;
        }
        ep.compute(n);
    };
    let own = input.restrict(my_range.lo, my_range.hi);
    scatter(ep, &own, &mut block);
    for src in 0..p {
        if src == rank {
            continue;
        }
        let part = recv_stream::<_, V>(ep, src, tag(op_id, subtag::SPLIT), pool)?;
        scatter(ep, &part, &mut block);
    }

    // --- Dense allgather phase, optionally quantized. ---
    let mut buf = pool.acquire();
    let payload: Bytes = match &cfg.quant {
        None => {
            // Raw partition block, encoded straight from the slab.
            SparseStream::encode_dense_slice_into(&block, &mut buf);
            Bytes::from(buf)
        }
        Some(qcfg) => {
            let values: Vec<f32> = block.iter().map(|v| v.to_f64() as f32).collect();
            let mut rng = XorShift64::new(cfg.quant_seed.wrapping_add(rank as u64));
            let q = quantize(&values, qcfg, &mut rng);
            ep.compute(block_len); // quantization pass
            q.encode_into(&mut buf);
            Bytes::from(buf)
        }
    };
    let blocks = allgather_bytes(ep, op_id, payload, pool)?;

    // --- Assemble the full dense result. ---
    let mut out = vec![V::zero(); dim];
    for (src, bytes) in blocks.iter().enumerate() {
        let range = partition_range(dim, p, src);
        match &cfg.quant {
            None => {
                let part = SparseStream::<V>::decode(bytes)?;
                let values = part.into_dense_vec();
                if values.len() != range.len() {
                    return Err(CollError::Invalid(format!(
                        "partition block from rank {src} has length {} != {}",
                        values.len(),
                        range.len()
                    )));
                }
                out[range.lo as usize..range.hi as usize].copy_from_slice(&values);
            }
            Some(_) => {
                let q = QuantizedVec::decode(bytes)?;
                if q.dim != range.len() {
                    return Err(CollError::Invalid(format!(
                        "quantized block from rank {src} has length {} != {}",
                        q.dim,
                        range.len()
                    )));
                }
                let values = dequantize(&q);
                for (i, v) in values.into_iter().enumerate() {
                    out[range.lo as usize + i] = V::from_f64(v as f64);
                }
            }
        }
    }
    ep.compute(dim); // assembly / dequantization pass
    Ok(SparseStream::from_dense(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::{ssar_split_allgather, AllreduceConfig};
    use crate::reference::reference_sum;
    use sparcml_net::{max_virtual_time, run_cluster, CostModel};
    use sparcml_quant::QsgdConfig;
    use sparcml_stream::random_sparse;

    fn check(p: usize, dim: usize, nnz: usize) {
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, nnz, 31 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            dsar_split_allgather(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            assert!(out.is_dense());
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{g} vs {e} (P={p})");
            }
        }
    }

    #[test]
    fn correct_power_of_two() {
        check(8, 4096, 200);
    }

    #[test]
    fn correct_non_power_of_two() {
        check(5, 1000, 100);
    }

    #[test]
    fn quantized_variant_is_close() {
        let p = 4;
        let dim = 4096;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, 400, 77 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let cfg = AllreduceConfig {
            quant: Some(QsgdConfig {
                bits: 8,
                bucket_size: 256,
                ..QsgdConfig::paper_default()
            }),
            ..Default::default()
        };
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            dsar_split_allgather(ep, &ins[ep.rank()], &cfg).unwrap()
        });
        // Max error per entry is bounded by bucket_scale / levels; verify a
        // loose global bound relative to the max summed magnitude.
        let max_abs = expect.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for out in outs {
            let got = out.to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() <= max_abs / 127.0 + 1e-3, "{g} vs {e}");
            }
        }
    }

    #[test]
    fn all_ranks_agree_on_quantized_result() {
        // Quantization is stochastic but happens once per partition owner,
        // so every rank must receive the *same* quantized result.
        let p = 4;
        let ins: Vec<SparseStream<f32>> =
            (0..p).map(|r| random_sparse(2048, 300, r as u64)).collect();
        let cfg = AllreduceConfig {
            quant: Some(QsgdConfig::paper_default()),
            ..Default::default()
        };
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            dsar_split_allgather(ep, &ins[ep.rank()], &cfg).unwrap()
        });
        for out in &outs[1..] {
            assert_eq!(out, &outs[0]);
        }
    }

    #[test]
    fn quantization_shrinks_allgather_bytes() {
        let p = 4;
        let dim = 1 << 16;
        let ins: Vec<SparseStream<f32>> =
            (0..p).map(|r| random_sparse(dim, 4096, r as u64)).collect();
        let bytes_for = |quant: Option<QsgdConfig>| {
            let cfg = AllreduceConfig {
                quant,
                ..Default::default()
            };
            let stats = run_cluster(p, CostModel::zero(), |ep| {
                dsar_split_allgather(ep, &ins[ep.rank()], &cfg).unwrap();
                ep.stats().bytes_sent
            });
            stats.iter().sum::<u64>()
        };
        let dense = bytes_for(None);
        let q4 = bytes_for(Some(QsgdConfig::with_bits(4)));
        // 4-bit codes vs 32-bit floats: allgather stage shrinks ~8x; the
        // split stage is unchanged, so total must shrink at least 3x here.
        assert!(q4 * 3 < dense, "dense {dense} vs 4-bit {q4}");
    }

    #[test]
    fn dsar_beats_ssar_when_result_is_dense() {
        // Dense fill-in: disjoint supports covering everything.
        let p = 8;
        let dim = 1 << 14;
        let per = dim / p;
        let cost = CostModel::aries();
        let mk = |rank: usize| {
            let pairs: Vec<(u32, f32)> = ((rank * per) as u32..((rank + 1) * per) as u32)
                .map(|i| (i, 1.0))
                .collect();
            SparseStream::from_pairs(dim, &pairs).unwrap()
        };
        let t_dsar = max_virtual_time(p, cost, |ep| {
            dsar_split_allgather(ep, &mk(ep.rank()), &AllreduceConfig::default()).unwrap();
        });
        let t_ssar = max_virtual_time(p, cost, |ep| {
            ssar_split_allgather(ep, &mk(ep.rank()), &AllreduceConfig::default()).unwrap();
        });
        assert!(
            t_dsar < t_ssar,
            "DSAR ({t_dsar}) should beat SSAR ({t_ssar}) on dense results"
        );
    }

    #[test]
    fn single_rank_returns_dense_copy() {
        let input = random_sparse::<f32>(256, 16, 5);
        let outs = run_cluster(1, CostModel::zero(), |ep| {
            dsar_split_allgather(ep, &input, &AllreduceConfig::default()).unwrap()
        });
        assert!(outs[0].is_dense());
        assert_eq!(outs[0].to_dense_vec(), input.to_dense_vec());
    }
}
