//! Shared plumbing for collective implementations: reusable buffer pools,
//! stream transfer over endpoints, tag derivation, and the power-of-two
//! fold of §A.

use bytes::Bytes;
use sparcml_net::Transport;
use sparcml_obs as obs;
use sparcml_stream::{DensityPolicy, Scalar, SparseStream};

use crate::error::CollError;

/// Sub-operation identifiers composed into message tags.
pub(crate) mod subtag {
    pub const FOLD: u64 = 1;
    pub const UNFOLD: u64 = 2;
    pub const SPLIT: u64 = 3;
    pub const RING: u64 = 4;
    /// Base for per-round tags; round `t` uses `ROUND + t`.
    pub const ROUND: u64 = 16;
}

/// Composes a unique message tag from a collective op id and a sub-op:
/// sub-tag `sub` of the op's [`sparcml_net::TagBlock`]. Each collective
/// owns the 2^16-tag block of its op id, so concurrent collectives (e.g.
/// jobs kept in flight by a progress engine) can never mis-match frames.
#[inline]
pub(crate) fn tag(op_id: u64, sub: u64) -> u64 {
    sparcml_net::TagBlock::for_op(op_id).tag(sub)
}

/// Upper bound on buffers a pool retains; beyond this, released buffers
/// are simply dropped. One collective round holds at most a handful of
/// frames in flight, so a small cap bounds memory without hurting reuse.
const MAX_POOLED: usize = 16;

/// A pool of reusable encode/receive byte buffers.
///
/// Every collective routes the O(P) message frames of its schedule
/// through a caller-provided pool. The [`crate::Communicator`] passes its
/// *persistent session pool*, so the steady state of a training loop
/// allocates nothing per message — buffers survive from one collective
/// call to the next (`CommStats::reuse_rate` approaches 1). The free
/// functions fall back to a fresh per-call pool. Either way:
///
/// 1. [`BufferPool::acquire`] hands out a cleared `Vec<u8>` (retaining the
///    capacity of whatever frame previously used it);
/// 2. the frame is encoded into it and converted to [`Bytes`] for the
///    transport **without copying** (`Bytes::from(Vec<u8>)`);
/// 3. received frames are decoded and their allocation reclaimed via
///    [`BufferPool::recycle`] — `Vec::<u8>::from(Bytes)` hands the
///    allocation back when the receiver is the sole owner (the common
///    case for point-to-point frames) and copies otherwise.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    acquires: u64,
    reuses: u64,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Hands out a cleared buffer, reusing a pooled allocation when one is
    /// available.
    pub fn acquire(&mut self) -> Vec<u8> {
        self.acquires += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.reuses += 1;
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer's allocation to the pool.
    pub fn release(&mut self, buf: Vec<u8>) {
        if self.free.len() < MAX_POOLED && buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Reclaims a received frame's allocation for reuse. Zero-copy when
    /// this handle is the frame's sole owner, a copy otherwise (either
    /// way, subsequent [`BufferPool::acquire`] calls stop allocating).
    pub fn recycle(&mut self, payload: Bytes) {
        self.release(Vec::from(payload));
    }

    /// Fraction of acquires served from the pool (observability/tests).
    pub fn reuse_rate(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.reuses as f64 / self.acquires as f64
        }
    }

    /// Total buffer acquisitions so far.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }

    /// Acquisitions that reused a pooled allocation.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

/// Encodes `stream` into a pooled buffer and sends it, blocking (full α
/// charge) or non-blocking.
pub(crate) fn send_stream<T: Transport, V: Scalar>(
    ep: &mut T,
    dst: usize,
    t: u64,
    stream: &SparseStream<V>,
    blocking: bool,
    pool: &mut BufferPool,
) -> Result<(), CollError> {
    let mut span = obs::span(obs::Category::Phase, "encode-send");
    if obs::enabled() {
        span.set_flow(
            obs::flow_id(t, ep.rank() as u64, dst as u64),
            obs::FlowDir::Out,
        );
    }
    let mut buf = pool.acquire();
    stream.encode_into(&mut buf);
    let payload = Bytes::from(buf);
    span.set_arg(payload.len() as u64);
    if blocking {
        ep.send(dst, t, payload)?;
    } else {
        ep.isend(dst, t, payload)?;
    }
    Ok(())
}

/// Encodes the index range of `stream` straight onto the wire — for
/// sparse streams this borrows the slab sub-range with no intermediate
/// stream — and sends it. The workhorse of the split phases.
pub(crate) fn send_stream_range<T: Transport, V: Scalar>(
    ep: &mut T,
    dst: usize,
    t: u64,
    stream: &SparseStream<V>,
    range: sparcml_stream::PartRange,
    blocking: bool,
    pool: &mut BufferPool,
) -> Result<(), CollError> {
    let mut span = obs::span(obs::Category::Phase, "encode-send");
    if obs::enabled() {
        span.set_flow(
            obs::flow_id(t, ep.rank() as u64, dst as u64),
            obs::FlowDir::Out,
        );
    }
    let mut buf = pool.acquire();
    match stream.sparse_view() {
        Some(view) => {
            SparseStream::encode_sparse_slice_into(
                stream.dim(),
                view.range(range.lo, range.hi),
                &mut buf,
            );
        }
        None => stream.restrict(range.lo, range.hi).encode_into(&mut buf),
    }
    let payload = Bytes::from(buf);
    span.set_arg(payload.len() as u64);
    if blocking {
        ep.send(dst, t, payload)?;
    } else {
        ep.isend(dst, t, payload)?;
    }
    Ok(())
}

/// Receives and decodes a stream from `src`, recycling the frame buffer.
pub(crate) fn recv_stream<T: Transport, V: Scalar>(
    ep: &mut T,
    src: usize,
    t: u64,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let mut span = obs::span(obs::Category::Phase, "recv-decode");
    if obs::enabled() {
        span.set_flow(
            obs::flow_id(t, src as u64, ep.rank() as u64),
            obs::FlowDir::In,
        );
    }
    let payload = recv_tracked(ep, src, t)?;
    span.set_arg(payload.len() as u64);
    let stream = SparseStream::decode(&payload)?;
    pool.recycle(payload);
    Ok(stream)
}

/// `ep.recv` with blocked-on-peer wait attribution: when telemetry is
/// enabled, the wall time spent inside the receive is charged to `src`
/// in this thread's collector (the raw signal behind straggler blame).
pub(crate) fn recv_tracked<T: Transport>(
    ep: &mut T,
    src: usize,
    t: u64,
) -> Result<Bytes, CollError> {
    if obs::telemetry::enabled() {
        let t0 = std::time::Instant::now();
        let payload = ep.recv(src, t)?;
        obs::telemetry::record_peer_wait(src, t0.elapsed().as_nanos() as u64);
        Ok(payload)
    } else {
        Ok(ep.recv(src, t)?)
    }
}

/// Simultaneous stream exchange with `peer` (send, then receive).
pub(crate) fn exchange_stream<T: Transport, V: Scalar>(
    ep: &mut T,
    peer: usize,
    t: u64,
    stream: &SparseStream<V>,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    send_stream(ep, peer, t, stream, true, pool)?;
    recv_stream(ep, peer, t, pool)
}

/// Simultaneous stream exchange with `peer` that piggybacks an 8-byte
/// union-size bound ahead of the encoded frame — the carrier of the
/// adaptive collectives' δ-switch state. Both sides combine the two
/// bounds with the same symmetric rule, so exchange partners can never
/// disagree on the projected union (and therefore on the switch), while
/// the self-describing wire frame keeps mixed sparse/dense rounds
/// decodable regardless of what the peer chose to send.
pub(crate) fn exchange_stream_with_bound<T: Transport, V: Scalar>(
    ep: &mut T,
    peer: usize,
    t: u64,
    stream: &SparseStream<V>,
    bound: u64,
    pool: &mut BufferPool,
) -> Result<(SparseStream<V>, u64), CollError> {
    {
        let mut span = obs::span(obs::Category::Phase, "encode-send");
        if obs::enabled() {
            span.set_flow(
                obs::flow_id(t, ep.rank() as u64, peer as u64),
                obs::FlowDir::Out,
            );
        }
        let mut buf = pool.acquire();
        // The word rides as an 8-byte trailer: `encode_into` clears the
        // buffer, so a prefix would be wiped (and prepending after the
        // encode would shift the whole frame).
        stream.encode_into(&mut buf);
        buf.extend_from_slice(&bound.to_le_bytes());
        let payload = Bytes::from(buf);
        span.set_arg(payload.len() as u64);
        ep.send(peer, t, payload)?;
    }
    let mut span = obs::span(obs::Category::Phase, "recv-decode");
    if obs::enabled() {
        span.set_flow(
            obs::flow_id(t, peer as u64, ep.rank() as u64),
            obs::FlowDir::In,
        );
    }
    let payload = recv_tracked(ep, peer, t)?;
    span.set_arg(payload.len() as u64);
    if payload.len() < 8 {
        return Err(CollError::Invalid(
            "adaptive frame missing its union bound".into(),
        ));
    }
    let split = payload.len() - 8;
    let their_bound = u64::from_le_bytes(payload[split..].try_into().expect("checked length"));
    let theirs = SparseStream::decode(&payload[..split])?;
    pool.recycle(payload);
    Ok((theirs, their_bound))
}

/// Adds `other` into `acc`, charging the endpoint for the reduction work.
pub(crate) fn add_charged<T: Transport, V: Scalar>(
    ep: &mut T,
    acc: &mut SparseStream<V>,
    other: &SparseStream<V>,
    policy: &DensityPolicy,
) -> Result<(), CollError> {
    let mut span = obs::span(obs::Category::Phase, "merge");
    let t0 = obs::telemetry::enabled().then(std::time::Instant::now);
    let stats = acc.add_assign_with(other, policy)?;
    if let Some(t0) = t0 {
        obs::telemetry::record_compute_ns(t0.elapsed().as_nanos() as u64);
    }
    span.set_arg(stats.elements_processed as u64);
    ep.compute(stats.elements_processed);
    Ok(())
}

/// Largest power of two `≤ p`.
#[inline]
pub(crate) fn pow2_below(p: usize) -> usize {
    assert!(p > 0);
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

/// Outcome of the §A pre-step that reduces participation to a power of two.
pub(crate) enum FoldRole<V: Scalar> {
    /// This rank participates in the power-of-two core with the folded
    /// input.
    Active(SparseStream<V>),
    /// This rank parked its data with its fold partner and waits for the
    /// result.
    Parked,
}

/// Pre-step: ranks `>= p2` send their input to `rank - p2`; receivers fold
/// it into their own. Returns each rank's role.
pub(crate) fn fold_to_pow2<T: Transport, V: Scalar>(
    ep: &mut T,
    op_id: u64,
    input: &SparseStream<V>,
    policy: &DensityPolicy,
    pool: &mut BufferPool,
) -> Result<FoldRole<V>, CollError> {
    let p = ep.size();
    let p2 = pow2_below(p);
    let rank = ep.rank();
    if rank >= p2 {
        let partner = rank - p2;
        send_stream(ep, partner, tag(op_id, subtag::FOLD), input, true, pool)?;
        return Ok(FoldRole::Parked);
    }
    let mut acc = input.clone();
    if rank + p2 < p {
        let extra = recv_stream::<_, V>(ep, rank + p2, tag(op_id, subtag::FOLD), pool)?;
        add_charged(ep, &mut acc, &extra, policy)?;
    }
    Ok(FoldRole::Active(acc))
}

/// Post-step: active ranks with a parked partner forward the final result;
/// parked ranks receive it.
pub(crate) fn unfold_result<T: Transport, V: Scalar>(
    ep: &mut T,
    op_id: u64,
    role_result: Option<SparseStream<V>>,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    let p2 = pow2_below(p);
    let rank = ep.rank();
    match role_result {
        Some(result) => {
            if rank + p2 < p {
                send_stream(
                    ep,
                    rank + p2,
                    tag(op_id, subtag::UNFOLD),
                    &result,
                    true,
                    pool,
                )?;
            }
            Ok(result)
        }
        None => recv_stream(ep, rank - p2, tag(op_id, subtag::UNFOLD), pool),
    }
}

/// Generic recursive-doubling / ring byte-block allgather. Returns all `P`
/// blocks indexed by rank. Uses recursive doubling when `P` is a power of
/// two (latency `log2(P)·α`), a ring otherwise (`(P−1)` rounds). Group
/// frames are staged in pooled buffers; incoming blocks are zero-copy
/// slices of the received frame.
pub(crate) fn allgather_bytes<T: Transport>(
    ep: &mut T,
    op_id: u64,
    mine: Bytes,
    pool: &mut BufferPool,
) -> Result<Vec<Bytes>, CollError> {
    let p = ep.size();
    let rank = ep.rank();
    let mut blocks: Vec<Option<Bytes>> = vec![None; p];
    blocks[rank] = Some(mine);
    if p == 1 {
        return Ok(blocks.into_iter().map(|b| b.expect("own block")).collect());
    }
    if p.is_power_of_two() {
        // Recursive doubling: after round t every rank holds the blocks of
        // the 2^(t+1)-rank group obtained by flipping its low t+1 bits.
        let rounds = p.trailing_zeros() as usize;
        for t in 0..rounds {
            let peer = rank ^ (1 << t);
            let group = 1usize << t;
            let base = (rank >> t) << t; // start of my current group
            let round_tag = tag(op_id, subtag::ROUND + t as u64);
            let payload = encode_block_group(&blocks, base, group, pool);
            {
                let mut span =
                    obs::span_with(obs::Category::Agreement, "ag-send", payload.len() as u64);
                if obs::enabled() {
                    span.set_flow(
                        obs::flow_id(round_tag, rank as u64, peer as u64),
                        obs::FlowDir::Out,
                    );
                }
                ep.send(peer, round_tag, payload)?;
            }
            let mut span = obs::span(obs::Category::Agreement, "ag-recv");
            if obs::enabled() {
                span.set_flow(
                    obs::flow_id(round_tag, peer as u64, rank as u64),
                    obs::FlowDir::In,
                );
            }
            let incoming = recv_tracked(ep, peer, round_tag)?;
            span.set_arg(incoming.len() as u64);
            drop(span);
            decode_block_group(&incoming, &mut blocks)?;
        }
    } else {
        // Ring: forward the block received in the previous round.
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        let mut carry_rank = rank;
        for t in 0..p - 1 {
            let round_tag = tag(op_id, subtag::ROUND + t as u64);
            let payload = encode_block_group(&blocks, carry_rank, 1, pool);
            {
                let mut span =
                    obs::span_with(obs::Category::Agreement, "ag-send", payload.len() as u64);
                if obs::enabled() {
                    span.set_flow(
                        obs::flow_id(round_tag, rank as u64, next as u64),
                        obs::FlowDir::Out,
                    );
                }
                ep.send(next, round_tag, payload)?;
            }
            let mut span = obs::span(obs::Category::Agreement, "ag-recv");
            if obs::enabled() {
                span.set_flow(
                    obs::flow_id(round_tag, prev as u64, rank as u64),
                    obs::FlowDir::In,
                );
            }
            let incoming = recv_tracked(ep, prev, round_tag)?;
            span.set_arg(incoming.len() as u64);
            drop(span);
            decode_block_group(&incoming, &mut blocks)?;
            carry_rank = (carry_rank + p - 1) % p;
        }
    }
    blocks
        .into_iter()
        .enumerate()
        .map(|(r, b)| b.ok_or_else(|| CollError::Invalid(format!("missing block from rank {r}"))))
        .collect()
}

/// Encodes `count` consecutive blocks starting at `base` as
/// `[u32 base][u32 count]([u64 len][bytes])*` into a pooled buffer.
fn encode_block_group(
    blocks: &[Option<Bytes>],
    base: usize,
    count: usize,
    pool: &mut BufferPool,
) -> Bytes {
    let group = &blocks[base..base + count];
    let mut size = 8;
    for b in group {
        size += 8 + b.as_ref().map_or(0, |b| b.len());
    }
    let mut buf = pool.acquire();
    buf.reserve(size);
    buf.extend_from_slice(&(base as u32).to_le_bytes());
    buf.extend_from_slice(&(count as u32).to_le_bytes());
    for b in group {
        let b = b.as_ref().expect("group block present");
        buf.extend_from_slice(&(b.len() as u64).to_le_bytes());
        buf.extend_from_slice(b);
    }
    Bytes::from(buf)
}

/// Inverse of [`encode_block_group`], installing blocks into `blocks` as
/// zero-copy slices of the received frame.
fn decode_block_group(payload: &Bytes, blocks: &mut [Option<Bytes>]) -> Result<(), CollError> {
    use bytes::Buf;
    let mut buf: &[u8] = payload;
    if buf.remaining() < 8 {
        return Err(CollError::Invalid("block group header truncated".into()));
    }
    let base = buf.get_u32_le() as usize;
    let count = buf.get_u32_le() as usize;
    for r in base..base + count {
        if buf.remaining() < 8 {
            return Err(CollError::Invalid("block group body truncated".into()));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(CollError::Invalid("block payload truncated".into()));
        }
        if r >= blocks.len() {
            return Err(CollError::Invalid("block rank out of range".into()));
        }
        // Current position within the frame, derived from the one cursor.
        let offset = payload.len() - buf.remaining();
        blocks[r] = Some(payload.slice(offset..offset + len));
        buf.advance(len);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcml_net::{run_cluster, CostModel};

    #[test]
    fn pow2_below_values() {
        assert_eq!(pow2_below(1), 1);
        assert_eq!(pow2_below(2), 2);
        assert_eq!(pow2_below(3), 2);
        assert_eq!(pow2_below(12), 8);
        assert_eq!(pow2_below(16), 16);
    }

    #[test]
    fn buffer_pool_reuses_capacity() {
        let mut pool = BufferPool::new();
        let mut buf = pool.acquire();
        buf.extend_from_slice(&[0u8; 4096]);
        let ptr = buf.as_ptr();
        pool.release(buf);
        let buf = pool.acquire();
        assert!(buf.is_empty());
        assert_eq!(buf.as_ptr(), ptr, "same allocation handed back");
        assert!(pool.reuse_rate() > 0.0);
    }

    #[test]
    fn buffer_pool_recycles_unique_bytes_without_copy() {
        let mut pool = BufferPool::new();
        let mut buf = pool.acquire();
        buf.extend_from_slice(&[7u8; 1024]);
        let ptr = buf.as_ptr();
        let payload = Bytes::from(buf);
        // Receiver-side: sole owner of the frame.
        pool.recycle(payload);
        let back = pool.acquire();
        assert_eq!(back.as_ptr(), ptr, "frame allocation reclaimed");
    }

    #[test]
    fn buffer_pool_bounds_retained_buffers() {
        let mut pool = BufferPool::new();
        for _ in 0..100 {
            pool.release(vec![0u8; 16]);
        }
        assert!(pool.free.len() <= MAX_POOLED);
    }

    #[test]
    fn allgather_bytes_power_of_two() {
        let out = run_cluster(8, CostModel::zero(), |ep| {
            let op = ep.next_op_id();
            let mut pool = BufferPool::new();
            let mine = Bytes::from(vec![ep.rank() as u8; ep.rank() + 1]);
            allgather_bytes(ep, op, mine, &mut pool).unwrap()
        });
        for blocks in &out {
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), r + 1);
                assert!(b.iter().all(|&x| x as usize == r));
            }
        }
    }

    #[test]
    fn allgather_bytes_ring_fallback() {
        let out = run_cluster(6, CostModel::zero(), |ep| {
            let op = ep.next_op_id();
            let mut pool = BufferPool::new();
            let mine = Bytes::from(vec![ep.rank() as u8; 3]);
            allgather_bytes(ep, op, mine, &mut pool).unwrap()
        });
        for blocks in &out {
            for (r, b) in blocks.iter().enumerate() {
                assert!(b.iter().all(|&x| x as usize == r));
            }
        }
    }

    #[test]
    fn fold_unfold_round_trip() {
        // P = 6: ranks 4,5 park with ranks 0,1.
        let out = run_cluster(6, CostModel::zero(), |ep| {
            let op = ep.next_op_id();
            let input = SparseStream::from_pairs(64, &[(ep.rank() as u32, 1.0f32)]).unwrap();
            let policy = DensityPolicy::default();
            let mut pool = BufferPool::new();
            let role = fold_to_pow2(ep, op, &input, &policy, &mut pool).unwrap();

            match role {
                FoldRole::Active(acc) => unfold_result(ep, op, Some(acc), &mut pool).unwrap(),
                FoldRole::Parked => unfold_result::<_, f32>(ep, op, None, &mut pool).unwrap(),
            }
        });
        // Rank 0 folded rank 4's entry, rank 1 folded rank 5's.
        assert_eq!(out[0].nnz(), 2);
        assert_eq!(out[1].nnz(), 2);
        assert_eq!(out[2].nnz(), 1);
        // Parked ranks receive their partner's fold result.
        assert_eq!(out[4], out[0]);
        assert_eq!(out[5], out[1]);
    }

    #[test]
    fn send_range_matches_restrict_for_both_reprs() {
        let out = run_cluster(2, CostModel::zero(), |ep| {
            let mut pool = BufferPool::new();
            let sparse =
                SparseStream::from_pairs(64, &[(2, 1.0f32), (10, 2.0), (40, 3.0)]).unwrap();
            let mut dense = sparse.clone();
            dense.densify();
            let window = sparcml_stream::PartRange { lo: 5, hi: 41 };
            if ep.rank() == 0 {
                send_stream_range(ep, 1, 1, &sparse, window, true, &mut pool).unwrap();
                send_stream_range(ep, 1, 2, &dense, window, true, &mut pool).unwrap();
                None
            } else {
                let a = recv_stream::<_, f32>(ep, 0, 1, &mut pool).unwrap();
                let b = recv_stream::<_, f32>(ep, 0, 2, &mut pool).unwrap();
                Some((a, b))
            }
        });
        let (a, b) = out[1].clone().unwrap();
        let expect = SparseStream::from_pairs(64, &[(10, 2.0f32), (40, 3.0)]).unwrap();
        assert_eq!(a, expect);
        assert_eq!(b, expect);
    }
}
