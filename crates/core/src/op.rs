//! Shared plumbing for collective implementations: stream transfer over
//! endpoints, tag derivation, and the power-of-two fold of §A.

use bytes::Bytes;
use sparcml_net::Transport;
use sparcml_stream::{DensityPolicy, Scalar, SparseStream};

use crate::error::CollError;

/// Sub-operation identifiers composed into message tags.
pub(crate) mod subtag {
    pub const FOLD: u64 = 1;
    pub const UNFOLD: u64 = 2;
    pub const SPLIT: u64 = 3;
    pub const RING: u64 = 4;
    /// Base for per-round tags; round `t` uses `ROUND + t`.
    pub const ROUND: u64 = 16;
}

/// Composes a unique message tag from a collective op id and a sub-op.
#[inline]
pub(crate) fn tag(op_id: u64, sub: u64) -> u64 {
    (op_id << 16) | sub
}

/// Sends a stream, blocking (full α charge) or non-blocking.
pub(crate) fn send_stream<T: Transport, V: Scalar>(
    ep: &mut T,
    dst: usize,
    t: u64,
    stream: &SparseStream<V>,
    blocking: bool,
) -> Result<(), CollError> {
    let payload = stream.encode();
    if blocking {
        ep.send(dst, t, payload)?;
    } else {
        ep.isend(dst, t, payload)?;
    }
    Ok(())
}

/// Receives and decodes a stream from `src`.
pub(crate) fn recv_stream<T: Transport, V: Scalar>(
    ep: &mut T,
    src: usize,
    t: u64,
) -> Result<SparseStream<V>, CollError> {
    let payload = ep.recv(src, t)?;
    Ok(SparseStream::decode(&payload)?)
}

/// Simultaneous stream exchange with `peer` (send, then receive).
pub(crate) fn exchange_stream<T: Transport, V: Scalar>(
    ep: &mut T,
    peer: usize,
    t: u64,
    stream: &SparseStream<V>,
) -> Result<SparseStream<V>, CollError> {
    send_stream(ep, peer, t, stream, true)?;
    recv_stream(ep, peer, t)
}

/// Adds `other` into `acc`, charging the endpoint for the reduction work.
pub(crate) fn add_charged<T: Transport, V: Scalar>(
    ep: &mut T,
    acc: &mut SparseStream<V>,
    other: &SparseStream<V>,
    policy: &DensityPolicy,
) -> Result<(), CollError> {
    let stats = acc.add_assign_with(other, policy)?;
    ep.compute(stats.elements_processed);
    Ok(())
}

/// Largest power of two `≤ p`.
#[inline]
pub(crate) fn pow2_below(p: usize) -> usize {
    assert!(p > 0);
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

/// Outcome of the §A pre-step that reduces participation to a power of two.
pub(crate) enum FoldRole<V: Scalar> {
    /// This rank participates in the power-of-two core with the folded
    /// input.
    Active(SparseStream<V>),
    /// This rank parked its data with its fold partner and waits for the
    /// result.
    Parked,
}

/// Pre-step: ranks `>= p2` send their input to `rank - p2`; receivers fold
/// it into their own. Returns each rank's role.
pub(crate) fn fold_to_pow2<T: Transport, V: Scalar>(
    ep: &mut T,
    op_id: u64,
    input: &SparseStream<V>,
    policy: &DensityPolicy,
) -> Result<FoldRole<V>, CollError> {
    let p = ep.size();
    let p2 = pow2_below(p);
    let rank = ep.rank();
    if rank >= p2 {
        let partner = rank - p2;
        send_stream(ep, partner, tag(op_id, subtag::FOLD), input, true)?;
        return Ok(FoldRole::Parked);
    }
    let mut acc = input.clone();
    if rank + p2 < p {
        let extra = recv_stream::<_, V>(ep, rank + p2, tag(op_id, subtag::FOLD))?;
        add_charged(ep, &mut acc, &extra, policy)?;
    }
    Ok(FoldRole::Active(acc))
}

/// Post-step: active ranks with a parked partner forward the final result;
/// parked ranks receive it.
pub(crate) fn unfold_result<T: Transport, V: Scalar>(
    ep: &mut T,
    op_id: u64,
    role_result: Option<SparseStream<V>>,
) -> Result<SparseStream<V>, CollError> {
    let p = ep.size();
    let p2 = pow2_below(p);
    let rank = ep.rank();
    match role_result {
        Some(result) => {
            if rank + p2 < p {
                send_stream(ep, rank + p2, tag(op_id, subtag::UNFOLD), &result, true)?;
            }
            Ok(result)
        }
        None => recv_stream(ep, rank - p2, tag(op_id, subtag::UNFOLD)),
    }
}

/// Generic recursive-doubling / ring byte-block allgather. Returns all `P`
/// blocks indexed by rank. Uses recursive doubling when `P` is a power of
/// two (latency `log2(P)·α`), a ring otherwise (`(P−1)` rounds).
pub(crate) fn allgather_bytes<T: Transport>(
    ep: &mut T,
    op_id: u64,
    mine: Bytes,
) -> Result<Vec<Bytes>, CollError> {
    let p = ep.size();
    let rank = ep.rank();
    let mut blocks: Vec<Option<Bytes>> = vec![None; p];
    blocks[rank] = Some(mine);
    if p == 1 {
        return Ok(blocks.into_iter().map(|b| b.expect("own block")).collect());
    }
    if p.is_power_of_two() {
        // Recursive doubling: after round t every rank holds the blocks of
        // the 2^(t+1)-rank group obtained by flipping its low t+1 bits.
        let rounds = p.trailing_zeros() as usize;
        for t in 0..rounds {
            let peer = rank ^ (1 << t);
            let group = 1usize << t;
            let base = (rank >> t) << t; // start of my current group
            let payload = encode_block_group(&blocks, base, group);
            ep.send(peer, tag(op_id, subtag::ROUND + t as u64), payload)?;
            let incoming = ep.recv(peer, tag(op_id, subtag::ROUND + t as u64))?;
            decode_block_group(&incoming, &mut blocks)?;
        }
    } else {
        // Ring: forward the block received in the previous round.
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        let mut carry_rank = rank;
        for t in 0..p - 1 {
            let payload = encode_block_group(&blocks, carry_rank, 1);
            ep.send(next, tag(op_id, subtag::ROUND + t as u64), payload)?;
            let incoming = ep.recv(prev, tag(op_id, subtag::ROUND + t as u64))?;
            decode_block_group(&incoming, &mut blocks)?;
            carry_rank = (carry_rank + p - 1) % p;
        }
    }
    blocks
        .into_iter()
        .enumerate()
        .map(|(r, b)| b.ok_or_else(|| CollError::Invalid(format!("missing block from rank {r}"))))
        .collect()
}

/// Encodes `count` consecutive blocks starting at `base` as
/// `[u32 base][u32 count]([u64 len][bytes])*`.
fn encode_block_group(blocks: &[Option<Bytes>], base: usize, count: usize) -> Bytes {
    use bytes::BufMut;
    let group = &blocks[base..base + count];
    let mut size = 8;
    for b in group {
        size += 8 + b.as_ref().map_or(0, |b| b.len());
    }
    let mut buf = bytes::BytesMut::with_capacity(size);
    buf.put_u32_le(base as u32);
    buf.put_u32_le(count as u32);
    for b in group {
        let b = b.as_ref().expect("group block present");
        buf.put_u64_le(b.len() as u64);
        buf.put_slice(b);
    }
    buf.freeze()
}

/// Inverse of [`encode_block_group`], installing blocks into `blocks`.
fn decode_block_group(payload: &[u8], blocks: &mut [Option<Bytes>]) -> Result<(), CollError> {
    use bytes::Buf;
    let mut buf = payload;
    if buf.remaining() < 8 {
        return Err(CollError::Invalid("block group header truncated".into()));
    }
    let base = buf.get_u32_le() as usize;
    let count = buf.get_u32_le() as usize;
    for r in base..base + count {
        if buf.remaining() < 8 {
            return Err(CollError::Invalid("block group body truncated".into()));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(CollError::Invalid("block payload truncated".into()));
        }
        if r >= blocks.len() {
            return Err(CollError::Invalid("block rank out of range".into()));
        }
        blocks[r] = Some(Bytes::copy_from_slice(&buf[..len]));
        buf.advance(len);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcml_net::{run_cluster, CostModel};

    #[test]
    fn pow2_below_values() {
        assert_eq!(pow2_below(1), 1);
        assert_eq!(pow2_below(2), 2);
        assert_eq!(pow2_below(3), 2);
        assert_eq!(pow2_below(12), 8);
        assert_eq!(pow2_below(16), 16);
    }

    #[test]
    fn allgather_bytes_power_of_two() {
        let out = run_cluster(8, CostModel::zero(), |ep| {
            let op = ep.next_op_id();
            let mine = Bytes::from(vec![ep.rank() as u8; ep.rank() + 1]);
            allgather_bytes(ep, op, mine).unwrap()
        });
        for blocks in &out {
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), r + 1);
                assert!(b.iter().all(|&x| x as usize == r));
            }
        }
    }

    #[test]
    fn allgather_bytes_ring_fallback() {
        let out = run_cluster(6, CostModel::zero(), |ep| {
            let op = ep.next_op_id();
            let mine = Bytes::from(vec![ep.rank() as u8; 3]);
            allgather_bytes(ep, op, mine).unwrap()
        });
        for blocks in &out {
            for (r, b) in blocks.iter().enumerate() {
                assert!(b.iter().all(|&x| x as usize == r));
            }
        }
    }

    #[test]
    fn fold_unfold_round_trip() {
        // P = 6: ranks 4,5 park with ranks 0,1.
        let out = run_cluster(6, CostModel::zero(), |ep| {
            let op = ep.next_op_id();
            let input = SparseStream::from_pairs(64, &[(ep.rank() as u32, 1.0f32)]).unwrap();
            let policy = DensityPolicy::default();
            let role = fold_to_pow2(ep, op, &input, &policy).unwrap();

            match role {
                FoldRole::Active(acc) => unfold_result(ep, op, Some(acc)).unwrap(),
                FoldRole::Parked => unfold_result::<_, f32>(ep, op, None).unwrap(),
            }
        });
        // Rank 0 folded rank 4's entry, rank 1 folded rank 5's.
        assert_eq!(out[0].nnz(), 2);
        assert_eq!(out[1].nnz(), 2);
        assert_eq!(out[2].nnz(), 1);
        // Parked ranks receive their partner's fold result.
        assert_eq!(out[4], out[0]);
        assert_eq!(out[5], out[1]);
    }
}
