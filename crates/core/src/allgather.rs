//! User-facing allgather collectives (§5.2).
//!
//! `allgather` collects every rank's contribution at every rank. SparCML's
//! sparse allgather concatenates sparse streams — when contributions have
//! disjoint supports (e.g. distributed coordinate descent, §8.2, where
//! "the values calculated by each node lie in different slices of the
//! entire model vector") the gather *is* the reduction.

use sparcml_net::Transport;
use sparcml_stream::{Scalar, SparseStream};

use crate::error::CollError;
use crate::op::{allgather_bytes, BufferPool};

/// Gathers every rank's sparse stream to every rank (streams returned in
/// rank order). Latency `log2(P)·α` for power-of-two `P` (recursive
/// doubling), `(P−1)·α` otherwise (ring).
pub fn sparse_allgather<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
) -> Result<Vec<SparseStream<V>>, CollError> {
    sparse_allgather_pooled(ep, input, &mut BufferPool::new())
}

/// [`sparse_allgather`] routing its frames through a caller-owned pool
/// (the communicator's persistent session pool).
pub(crate) fn sparse_allgather_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    pool: &mut BufferPool,
) -> Result<Vec<SparseStream<V>>, CollError> {
    let op_id = ep.next_op_id();
    let mut buf = pool.acquire();
    input.encode_into(&mut buf);
    let blocks = allgather_bytes(ep, op_id, bytes::Bytes::from(buf), pool)?;
    blocks
        .iter()
        .map(|b| SparseStream::decode(b).map_err(CollError::from))
        .collect()
}

/// Gathers and sums sparse streams whose supports are disjoint: the result
/// is the element-wise sum, assembled by merge (correct — though no longer
/// a pure concatenation — even if supports do overlap).
pub fn sparse_allgather_sum<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
) -> Result<SparseStream<V>, CollError> {
    sparse_allgather_sum_pooled(ep, input, &mut BufferPool::new())
}

/// [`sparse_allgather_sum`] routing its frames through a caller-owned
/// pool (the communicator's persistent session pool).
pub(crate) fn sparse_allgather_sum_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    input: &SparseStream<V>,
    pool: &mut BufferPool,
) -> Result<SparseStream<V>, CollError> {
    let parts = sparse_allgather_pooled(ep, input, pool)?;
    // Try the cheap disjoint concatenation first; fall back to merge.
    match SparseStream::concat_disjoint(&parts) {
        Ok(out) => {
            ep.compute(out.stored_len());
            Ok(out)
        }
        Err(_) => {
            let policy = sparcml_stream::DensityPolicy::default();
            let (out, processed) = sparcml_stream::reduce_streams(parts, &policy)?;
            ep.compute(processed);
            Ok(out)
        }
    }
}

/// Dense allgather: every rank contributes a dense block (e.g. its slice
/// of the model); all blocks are returned in rank order. This is the dense
/// baseline the SCD experiment compares against (§8.2).
pub fn dense_allgather<T: Transport, V: Scalar>(
    ep: &mut T,
    block: &[V],
) -> Result<Vec<Vec<V>>, CollError> {
    dense_allgather_pooled(ep, block, &mut BufferPool::new())
}

/// [`dense_allgather`] routing its frames through a caller-owned pool
/// (the communicator's persistent session pool).
pub(crate) fn dense_allgather_pooled<T: Transport, V: Scalar>(
    ep: &mut T,
    block: &[V],
    pool: &mut BufferPool,
) -> Result<Vec<Vec<V>>, CollError> {
    let op_id = ep.next_op_id();
    let mut buf = pool.acquire();
    SparseStream::encode_dense_slice_into(block, &mut buf);
    let blocks = allgather_bytes(ep, op_id, bytes::Bytes::from(buf), pool)?;
    blocks
        .iter()
        .map(|b| {
            SparseStream::<V>::decode(b)
                .map(|s| s.into_dense_vec())
                .map_err(CollError::from)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcml_net::{max_virtual_time, run_cluster, CostModel};
    use sparcml_stream::random_sparse;

    #[test]
    fn sparse_allgather_returns_all_inputs() {
        let p = 8;
        let ins: Vec<SparseStream<f32>> =
            (0..p).map(|r| random_sparse(1024, 16, r as u64)).collect();
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            sparse_allgather(ep, &ins[ep.rank()]).unwrap()
        });
        for got in outs {
            assert_eq!(got.len(), p);
            for (r, s) in got.iter().enumerate() {
                assert_eq!(s, &ins[r]);
            }
        }
    }

    #[test]
    fn allgather_sum_disjoint_blocks() {
        let p = 4;
        let dim = 64;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let lo = (ep.rank() * 16) as u32;
            let pairs: Vec<(u32, f32)> = (lo..lo + 16).map(|i| (i, i as f32)).collect();
            let input = SparseStream::from_pairs(dim, &pairs).unwrap();
            sparse_allgather_sum(ep, &input).unwrap()
        });
        for out in outs {
            // 64 explicit pairs (index 0 carries an explicit 0.0).
            assert_eq!(out.stored_len(), dim);
            for i in 0..dim as u32 {
                assert_eq!(out.get(i), i as f32);
            }
        }
    }

    #[test]
    fn allgather_sum_overlapping_blocks_falls_back_to_merge() {
        let p = 4;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let input = SparseStream::from_pairs(32, &[(3, 1.0f32), (9, 1.0)]).unwrap();
            sparse_allgather_sum(ep, &input).unwrap()
        });
        for out in outs {
            assert_eq!(out.get(3), p as f32);
            assert_eq!(out.get(9), p as f32);
        }
    }

    #[test]
    fn dense_allgather_round_trips_blocks() {
        let p = 4;
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let block = vec![ep.rank() as f32; 8];
            dense_allgather(ep, &block).unwrap()
        });
        for got in outs {
            for (r, block) in got.iter().enumerate() {
                assert_eq!(block, &vec![r as f32; 8]);
            }
        }
    }

    #[test]
    fn sparse_allgather_latency_log2p() {
        let cost = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            isend_alpha_fraction: 0.0,
        };
        let t = max_virtual_time(8, cost, |ep| {
            let input = SparseStream::<f32>::zeros(64);
            sparse_allgather(ep, &input).unwrap();
        });
        assert!((t - 3.0).abs() < 1e-9, "t = {t}");
    }
}
