//! Communicator sessions: the unified entry point to every SparCML
//! collective.
//!
//! A [`Communicator`] owns one [`Transport`] session (rank, peers, clock)
//! and exposes each collective as a method returning a fluent builder.
//! One builder chain replaces the seed's parallel blocking /
//! non-blocking / rooted free functions:
//!
//! ```
//! use sparcml_core::{run_communicators, Algorithm};
//! use sparcml_net::CostModel;
//! use sparcml_stream::SparseStream;
//!
//! let results = run_communicators(4, CostModel::aries(), |comm| {
//!     let grad = SparseStream::from_pairs(
//!         1_000_000,
//!         &[(comm.rank() as u32 * 10, 1.0f32), (999_999, 0.5)],
//!     )
//!     .unwrap();
//!     // Algorithm::Auto (the §5.3 selector) is the default path.
//!     comm.allreduce(&grad).launch().and_then(|h| h.wait()).unwrap()
//! });
//! assert_eq!(results[0].get(999_999), 2.0);
//! ```
//!
//! Every `launch()` returns a [`CollectiveHandle`]. Blocking launches
//! resolve eagerly and `wait()` just hands the value over; after
//! `.nonblocking()` the transport moves to a helper thread, `compute()`
//! accounts overlapped work, and `wait()` reinstalls the transport into
//! the communicator before returning the result (ideal-overlap clock
//! merge, §7).

use sparcml_net::{
    run_cluster, run_reactor_loopback_cluster, run_tcp_loopback_cluster, run_thread_cluster,
    CommStats, CostModel, Endpoint, GroupTransport, ReactorTransport, TcpTransport,
    ThreadTransport, Topology, TopologyCostModel, Transport, TransportConfig,
};
use sparcml_obs as obs;
use sparcml_quant::QsgdConfig;
use sparcml_stream::{DensityPolicy, Scalar, SparseStream};
use std::sync::Arc;

use crate::allgather::{
    dense_allgather_pooled, sparse_allgather_pooled, sparse_allgather_sum_pooled,
};
use crate::allreduce::{dispatch, Algorithm, AllreduceConfig};
use crate::error::CollError;
use crate::nonblocking::Request;
use crate::observed::ObservedCostModel;
use crate::op::BufferPool;
use crate::rooted::{
    allreduce_via_reduce_bcast_pooled, sparse_broadcast_pooled, sparse_reduce_pooled,
    sparse_reduce_scatter_pooled,
};
use crate::telemetry::TelemetryExchange;

/// Environment variable that, when set to `1`/`true`, starts every
/// [`Communicator`] with measurement calibration enabled (see
/// [`Communicator::enable_calibration`]).
pub const ENV_CALIBRATE: &str = "SPARCML_CALIBRATE";

/// A collective-communication session over one pluggable transport.
///
/// `Communicator<Endpoint>` (the default) runs on the deterministic
/// virtual-time cluster; `Communicator<ThreadTransport>` runs the same
/// collectives on real concurrent threads. Any future backend only needs
/// to implement [`Transport`].
pub struct Communicator<T: Transport = Endpoint> {
    transport: T,
    /// Set when a non-blocking helper thread panicked and took the
    /// transport with it: the session then holds only the inert
    /// placeholder from `detach()`, and silently running collectives on
    /// it would return local-only results. Every later `launch()` fails
    /// loudly instead.
    transport_lost: bool,
    /// Persistent message-buffer pool shared by every *blocking*
    /// collective this session launches, so encode/receive buffers
    /// survive from one call to the next instead of being re-allocated
    /// per collective (non-blocking launches use a private per-call pool:
    /// the session pool cannot follow the transport onto the helper
    /// thread and stay here at once). Reuse is observable via
    /// [`Communicator::stats_snapshot`].
    pool: BufferPool,
    /// Session-wide measurement calibration: when set, every collective
    /// launched here inherits it (unless its config carries its own) so
    /// the `Auto` selector learns from measured durations. Installed via
    /// [`Communicator::enable_calibration`] /
    /// [`Communicator::set_calibration`], or the `SPARCML_CALIBRATE`
    /// environment toggle at construction.
    calibration: Option<Arc<ObservedCostModel>>,
    /// Control-tag allocator + sequence state for
    /// [`Communicator::cluster_report`] telemetry exchanges. Fresh per
    /// session (and per subgroup after [`Communicator::split`]) so the
    /// lockstep block sequence is scoped to the ranks that actually
    /// exchange.
    telemetry: TelemetryExchange,
}

impl<T: Transport + Send + 'static> Communicator<T> {
    /// Wraps a transport session in a communicator. When the
    /// `SPARCML_CALIBRATE` environment variable is set to `1`/`true`,
    /// the session starts with measurement calibration enabled (the
    /// transport's cost model as the base preset) — equivalent to
    /// calling [`Communicator::enable_calibration`].
    pub fn new(transport: T) -> Self {
        let calibration = match std::env::var(ENV_CALIBRATE) {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => {
                Some(Arc::new(ObservedCostModel::new(*transport.cost())))
            }
            _ => None,
        };
        Communicator {
            transport,
            transport_lost: false,
            pool: BufferPool::new(),
            calibration,
            telemetry: TelemetryExchange::new(),
        }
    }

    /// Turns on measurement-calibrated `Auto` selection for this session
    /// with the transport's cost model as the starting preset. Returns
    /// the calibrator so callers can inspect convergence
    /// ([`ObservedCostModel::report`]). Collective — every rank of the
    /// communicator must enable it (the calibrated pick adds an
    /// agreement round that all ranks must join).
    pub fn enable_calibration(&mut self) -> Arc<ObservedCostModel> {
        let cal = Arc::new(ObservedCostModel::new(*self.transport.cost()));
        self.calibration = Some(cal.clone());
        cal
    }

    /// Installs a specific calibrator (e.g. one shared with a training
    /// loop, or built with custom [`crate::CalibrationConfig`] tunables).
    pub fn set_calibration(&mut self, cal: Arc<ObservedCostModel>) {
        self.calibration = Some(cal);
    }

    /// The session's calibrator, if calibration is enabled.
    pub fn calibration(&self) -> Option<&Arc<ObservedCostModel>> {
        self.calibration.as_ref()
    }

    fn ensure_attached(&self) -> Result<(), CollError> {
        if self.transport_lost {
            return Err(CollError::Invalid(
                "communicator lost its transport: a non-blocking collective panicked;                  rebuild the session with Communicator::new"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Shared blocking-launch path: runs `op` on the owned transport and
    /// the session's persistent buffer pool, wrapping the result in an
    /// already-resolved handle.
    fn launch_blocking<R, F>(&mut self, op: F) -> Result<CollectiveHandle<'_, T, R>, CollError>
    where
        R: Send + 'static,
        F: FnOnce(&mut T, &mut BufferPool) -> Result<R, CollError>,
    {
        self.ensure_attached()?;
        let out = op(&mut self.transport, &mut self.pool)?;
        Ok(CollectiveHandle::ready(self, out))
    }

    /// Shared non-blocking-launch path: detaches the transport onto a
    /// helper thread; the handle reinstalls it on `wait()` (or drop).
    fn launch_spawned<R, F>(&mut self, op: F) -> Result<CollectiveHandle<'_, T, R>, CollError>
    where
        R: Send + 'static,
        F: FnOnce(&mut T) -> Result<R, CollError> + Send + 'static,
    {
        self.ensure_attached()?;
        let req = Request::spawn(self.transport.detach(), op);
        Ok(CollectiveHandle::in_flight(self, req))
    }

    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Communicator size `P`.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Current session time in seconds (virtual or wall, per transport).
    pub fn clock(&self) -> f64 {
        self.transport.clock()
    }

    /// The transport's network cost model (planning hint for
    /// [`Algorithm::Auto`]).
    pub fn cost(&self) -> &CostModel {
        self.transport.cost()
    }

    /// Communication statistics accumulated so far.
    pub fn stats(&self) -> &CommStats {
        self.transport.stats()
    }

    /// A point-in-time copy of the statistics with the session pool's
    /// counters filled in: `CommStats::reuse_rate` reports the fraction
    /// of message buffers served from the persistent pool (approaching 1
    /// in a steady-state training loop).
    pub fn stats_snapshot(&self) -> CommStats {
        let mut s = self.transport.stats().snapshot();
        s.pool_acquires = self.pool.acquires();
        s.pool_reuses = self.pool.reuses();
        s
    }

    /// The session's counters (pool included, as in
    /// [`Communicator::stats_snapshot`]) in the stable plaintext layout of
    /// [`CommStats::render_text`] — what a health endpoint or bench bin
    /// prints instead of hand-formatting fields. Followed by the
    /// process-wide per-algorithm latency histograms
    /// ([`sparcml_obs::LatencyRegistry::render_text`]) when any
    /// collective has run, and the calibration report when this session
    /// calibrates.
    pub fn stats_report(&self) -> String {
        let mut out = self.stats_snapshot().render_text();
        // Active SPARCML_* overrides ride along so a pasted report shows
        // the knobs the process ran under. (The fusion override belongs
        // to the engine crate; core only echoes the raw value.)
        if let Ok(raw) = std::env::var("SPARCML_FUSION_MAX_DENSITY") {
            out.push_str(&format!("env SPARCML_FUSION_MAX_DENSITY {raw}\n"));
        }
        let latency = obs::metrics::global().render_text();
        if !latency.is_empty() {
            out.push('\n');
            out.push_str(&latency);
        }
        if let Some(cal) = self.calibration.as_ref() {
            out.push('\n');
            out.push_str(&cal.report());
        }
        if obs::Recorder::is_installed() {
            out.push_str(&format!(
                "\nspan_drops {}\n",
                obs::Recorder::dropped_total()
            ));
        }
        out
    }

    /// Builds a cluster-consistent [`sparcml_obs::ClusterReport`]:
    /// snapshots this rank's telemetry (transport counters, per-peer wait
    /// attribution, density samples, latency digests, span drops) into a
    /// [`sparcml_obs::TelemetryFrame`] and allgathers it with every peer
    /// over the reserved control tag space, so all ranks return the same
    /// straggler ranking and skew diagnostics.
    ///
    /// Collective — every rank of the session must call it in the same
    /// order relative to other collectives. The first call turns
    /// collection on process-wide (frames before that carry only
    /// counters), so long-running jobs should call it once early and
    /// then at every reporting interval. Peer frames are untrusted
    /// input: a malformed or impossible frame fails with
    /// [`CollError::Invalid`] rather than producing a wrong report.
    pub fn cluster_report(&mut self) -> Result<obs::ClusterReport, CollError> {
        self.ensure_attached()?;
        obs::telemetry::enable();
        obs::telemetry::set_counters(
            self.stats_snapshot()
                .fields()
                .iter()
                .map(|(name, value)| (name.to_string(), *value))
                .collect(),
        );
        let frame =
            obs::telemetry::local_frame(self.rank(), self.size(), self.telemetry.next_seq());
        let frames = self.telemetry.allgather(&mut self.transport, &frame)?;
        Ok(obs::ClusterReport::new(frames))
    }

    /// Splits the communicator MPI-style: every rank of this session
    /// calls `split` with a `color`; ranks sharing a color form one
    /// subgroup and each caller's session becomes a communicator over its
    /// subgroup (ranks renumbered `0..group_size` by ascending parent
    /// rank, message tags scoped so concurrent collectives on sibling
    /// groups never collide). All collectives — including non-blocking
    /// launches and engine submission — work unchanged on the subgroup;
    /// [`Communicator::into_parent`] dissolves the view and returns the
    /// original session.
    ///
    /// Errors consume the session. `split` is a collective call, so a
    /// failure (bad configuration, lost peer) is cluster-symmetric: every
    /// rank fails the same way and the job should rebuild its sessions
    /// rather than limp on with a half-split cluster.
    pub fn split(self, color: u64) -> Result<Communicator<GroupTransport<T>>, CollError> {
        self.ensure_attached()?;
        let Communicator {
            transport,
            pool,
            calibration,
            ..
        } = self;
        let group = GroupTransport::split(transport, color)?;
        Ok(Communicator {
            transport: group,
            transport_lost: false,
            pool,
            calibration,
            telemetry: TelemetryExchange::new(),
        })
    }

    /// [`Communicator::split`] along a [`Topology`]'s node groups: each
    /// rank lands in the subgroup of its node. Errors consume the session
    /// (see [`Communicator::split`]).
    pub fn split_by_topology(
        self,
        topo: &Topology,
    ) -> Result<Communicator<GroupTransport<T>>, CollError> {
        if topo.size() != self.size() {
            return Err(CollError::Invalid(format!(
                "topology covers {} ranks but the communicator has {}",
                topo.size(),
                self.size()
            )));
        }
        let color = topo.node_of(self.rank()) as u64;
        self.split(color)
    }

    /// Charges local reduction work of `elements` element operations.
    pub fn compute(&mut self, elements: usize) {
        self.transport.compute(elements);
    }

    /// Adds `seconds` of non-overlappable local work.
    pub fn charge_seconds(&mut self, seconds: f64) {
        self.transport.charge_seconds(seconds);
    }

    /// Resets the clock and statistics (between experiment trials).
    pub fn reset_clock(&mut self) {
        self.transport.reset_clock();
    }

    /// Borrows the underlying transport (e.g. for raw point-to-point
    /// messaging alongside collectives).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutably borrows the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Consumes the communicator, returning the transport session.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Global element-wise sum of every rank's `input`, delivered to every
    /// rank. Defaults to [`Algorithm::Auto`]; see [`Allreduce`] for the
    /// available knobs.
    pub fn allreduce<'a, V: Scalar>(
        &'a mut self,
        input: &'a SparseStream<V>,
    ) -> Allreduce<'a, T, V> {
        Allreduce {
            comm: self,
            input,
            algorithm: Algorithm::Auto,
            cfg: AllreduceConfig::default(),
            via_reduce_broadcast: false,
            nonblocking: false,
        }
    }

    /// Rooted reduction: the sum lands at `root`; other ranks receive an
    /// empty stream of the same dimension.
    pub fn reduce<'a, V: Scalar>(
        &'a mut self,
        input: &'a SparseStream<V>,
        root: usize,
    ) -> Reduce<'a, T, V> {
        Reduce {
            comm: self,
            input,
            root,
            cfg: AllreduceConfig::default(),
            nonblocking: false,
        }
    }

    /// Broadcast of `root`'s stream to every rank. Non-root ranks pass
    /// their (ignored) `input` only to convey the dimension.
    pub fn broadcast<'a, V: Scalar>(
        &'a mut self,
        input: &'a SparseStream<V>,
        root: usize,
    ) -> Broadcast<'a, T, V> {
        Broadcast {
            comm: self,
            input,
            root,
            nonblocking: false,
        }
    }

    /// Reduce-scatter: each rank receives the fully reduced sub-vector for
    /// its dimension partition.
    pub fn reduce_scatter<'a, V: Scalar>(
        &'a mut self,
        input: &'a SparseStream<V>,
    ) -> ReduceScatter<'a, T, V> {
        ReduceScatter {
            comm: self,
            input,
            cfg: AllreduceConfig::default(),
            nonblocking: false,
        }
    }

    /// Gathers every rank's sparse stream to every rank (streams returned
    /// in rank order).
    pub fn allgather<'a, V: Scalar>(
        &'a mut self,
        input: &'a SparseStream<V>,
    ) -> Allgather<'a, T, V> {
        Allgather {
            comm: self,
            input,
            nonblocking: false,
        }
    }

    /// Gathers and sums sparse streams (pure concatenation when supports
    /// are disjoint, merge otherwise).
    pub fn allgather_sum<'a, V: Scalar>(
        &'a mut self,
        input: &'a SparseStream<V>,
    ) -> AllgatherSum<'a, T, V> {
        AllgatherSum {
            comm: self,
            input,
            nonblocking: false,
        }
    }

    /// Dense allgather of raw value blocks, returned in rank order — the
    /// dense baseline of the SCD experiment (§8.2).
    pub fn allgather_dense<'a, V: Scalar>(
        &'a mut self,
        block: &'a [V],
    ) -> DenseAllgather<'a, T, V> {
        DenseAllgather {
            comm: self,
            block,
            nonblocking: false,
        }
    }
}

impl<T: Transport + Send + 'static> Communicator<GroupTransport<T>> {
    /// Dissolves a subgroup session created by [`Communicator::split`],
    /// returning the parent communicator (its persistent buffer pool —
    /// and any lost-transport poisoning — carry over).
    pub fn into_parent(self) -> Communicator<T> {
        let Communicator {
            transport,
            transport_lost,
            pool,
            calibration,
            ..
        } = self;
        Communicator {
            transport: transport.into_parent(),
            transport_lost,
            pool,
            calibration,
            telemetry: TelemetryExchange::new(),
        }
    }
}

impl<T: Transport + std::fmt::Debug> std::fmt::Debug for Communicator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("transport", &self.transport)
            .finish()
    }
}

enum HandleState<T, R> {
    /// Blocking launch: the result is already here.
    Ready(Option<R>),
    /// Non-blocking launch: the transport is on a helper thread.
    InFlight(Option<Request<T, R>>),
}

/// The single completion handle unifying blocking and non-blocking
/// collectives: blocking launches are already resolved and `wait()` just
/// returns the value; non-blocking launches are joined, their transport is
/// reinstalled into the communicator, and overlapped work accounted via
/// [`CollectiveHandle::compute`] merges into the clock as
/// `max(communication, computation)`.
///
/// Dropping an in-flight handle without waiting joins it (discarding the
/// result) so the communicator always gets its transport back.
#[must_use = "a collective handle must be waited on"]
pub struct CollectiveHandle<'a, T: Transport + Send + 'static, R: Send + 'static> {
    comm: &'a mut Communicator<T>,
    state: HandleState<T, R>,
}

impl<T: Transport + Send + 'static, R: Send + 'static> CollectiveHandle<'_, T, R> {
    fn ready(comm: &mut Communicator<T>, value: R) -> CollectiveHandle<'_, T, R> {
        CollectiveHandle {
            comm,
            state: HandleState::Ready(Some(value)),
        }
    }

    fn in_flight(comm: &mut Communicator<T>, req: Request<T, R>) -> CollectiveHandle<'_, T, R> {
        CollectiveHandle {
            comm,
            state: HandleState::InFlight(Some(req)),
        }
    }

    /// Whether the collective is still running on a helper thread.
    pub fn is_nonblocking(&self) -> bool {
        matches!(self.state, HandleState::InFlight(_))
    }

    /// Accounts local computation of `elements` element-ops: overlapped
    /// with the collective when non-blocking, serial when blocking.
    pub fn compute(&mut self, elements: usize) {
        match &mut self.state {
            HandleState::Ready(_) => self.comm.compute(elements),
            HandleState::InFlight(Some(req)) => req.compute(elements),
            HandleState::InFlight(None) => {}
        }
    }

    /// Accounts `seconds` of local wall work (overlapped when
    /// non-blocking).
    pub fn charge_seconds(&mut self, seconds: f64) {
        match &mut self.state {
            HandleState::Ready(_) => self.comm.charge_seconds(seconds),
            HandleState::InFlight(Some(req)) => req.charge_seconds(seconds),
            HandleState::InFlight(None) => {}
        }
    }

    /// Completes the collective and returns its result. For non-blocking
    /// launches this joins the helper thread and reinstalls the transport
    /// into the communicator (even if the collective failed).
    pub fn wait(mut self) -> Result<R, CollError> {
        match &mut self.state {
            HandleState::Ready(slot) => Ok(slot.take().expect("blocking handle waited on twice")),
            HandleState::InFlight(slot) => {
                let req = slot.take().expect("in-flight handle waited on twice");
                match req.finish() {
                    Ok((transport, result)) => {
                        self.comm.transport = transport;
                        result
                    }
                    Err(e) => {
                        // The helper thread panicked and the transport is
                        // gone: poison the session so later collectives
                        // fail loudly instead of running on the placeholder.
                        self.comm.transport_lost = true;
                        Err(e)
                    }
                }
            }
        }
    }
}

impl<T: Transport + Send + 'static, R: Send + 'static> Drop for CollectiveHandle<'_, T, R> {
    fn drop(&mut self) {
        if let HandleState::InFlight(slot) = &mut self.state {
            if let Some(req) = slot.take() {
                match req.finish() {
                    Ok((transport, _discarded)) => self.comm.transport = transport,
                    Err(_) => self.comm.transport_lost = true,
                }
            }
        }
    }
}

/// Fluent builder for allreduce. Created by [`Communicator::allreduce`];
/// defaults: [`Algorithm::Auto`], no quantization, default δ policy,
/// blocking.
#[must_use = "collective builders do nothing until `launch()`"]
pub struct Allreduce<'a, T: Transport + Send + 'static, V: Scalar> {
    comm: &'a mut Communicator<T>,
    input: &'a SparseStream<V>,
    algorithm: Algorithm,
    cfg: AllreduceConfig,
    via_reduce_broadcast: bool,
    nonblocking: bool,
}

impl<'a, T: Transport + Send + 'static, V: Scalar> Allreduce<'a, T, V> {
    /// Selects the collective schedule ([`Algorithm::Auto`] = adaptive).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces the full option set at once.
    pub fn config(mut self, cfg: AllreduceConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Quantizes the dense stage with QSGD (§6; effective for
    /// [`Algorithm::DsarSplitAllgather`]).
    pub fn quantized(mut self, quant: QsgdConfig) -> Self {
        self.cfg.quant = Some(quant);
        self
    }

    /// Seed for stochastic quantization (each rank derives `seed + rank`).
    pub fn quant_seed(mut self, seed: u64) -> Self {
        self.cfg.quant_seed = seed;
        self
    }

    /// Sparse→dense switching policy (δ scaling, §5.1).
    pub fn policy(mut self, policy: DensityPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Node placement for [`Algorithm::Hierarchical`] and the
    /// topology-aware `Auto` path (which then prices flat vs two-level
    /// per call and may pick either).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.topology = Some(topology);
        self
    }

    /// Per-link-class cost model (intra vs inter node) for the
    /// topology-aware selection.
    pub fn topology_cost(mut self, cost: TopologyCostModel) -> Self {
        self.cfg.topology_cost = Some(cost);
        self
    }

    /// Pins the flat algorithm the node leaders run inside
    /// [`Algorithm::Hierarchical`] (default: recursive `Auto`).
    pub fn leader_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.cfg.hier_leader_algorithm = algorithm;
        self
    }

    /// Whether the split phase uses blocking sends (full `(P−1)α`) or
    /// non-blocking isends (§5.3.2 latency mitigation).
    pub fn blocking_split_sends(mut self, blocking: bool) -> Self {
        self.cfg.blocking_split_sends = blocking;
        self
    }

    /// Routes the classic sparse schedules through their in-collective
    /// δ-switching variants ([`AllreduceConfig::adaptive`]): an explicit
    /// [`Algorithm::SsarRecDbl`]/[`Algorithm::SsarSplitAllgather`]
    /// request keeps its schedule but may switch representation dense
    /// mid-collective once the projected union crosses δ.
    pub fn adaptive(mut self) -> Self {
        self.cfg.adaptive = true;
        self
    }

    /// Routes through the rooted composition `reduce + broadcast` instead
    /// of a one-shot schedule (the classic trade-off point of §5.3; the
    /// `algorithm` setting is ignored on this route).
    pub fn via_reduce_broadcast(mut self) -> Self {
        self.via_reduce_broadcast = true;
        self
    }

    /// Runs the collective on a helper thread; the returned handle
    /// overlaps local compute and reinstalls the transport on `wait()`.
    pub fn nonblocking(mut self) -> Self {
        self.nonblocking = true;
        self
    }

    /// Launches the collective.
    pub fn launch(self) -> Result<CollectiveHandle<'a, T, SparseStream<V>>, CollError> {
        let Allreduce {
            comm,
            input,
            algorithm,
            mut cfg,
            via_reduce_broadcast,
            nonblocking,
        } = self;
        if cfg.calibration.is_none() {
            cfg.calibration = comm.calibration.clone();
        }
        let run = move |tp: &mut T, input: &SparseStream<V>, pool: &mut BufferPool| {
            if via_reduce_broadcast {
                allreduce_via_reduce_bcast_pooled(tp, input, &cfg, pool)
            } else {
                dispatch(tp, input, algorithm, &cfg, pool)
            }
        };
        if nonblocking {
            let input = input.clone();
            comm.launch_spawned(move |tp| run(tp, &input, &mut BufferPool::new()))
        } else {
            comm.launch_blocking(|tp, pool| run(tp, input, pool))
        }
    }
}

/// Fluent builder for the rooted reduce. Created by
/// [`Communicator::reduce`].
#[must_use = "collective builders do nothing until `launch()`"]
pub struct Reduce<'a, T: Transport + Send + 'static, V: Scalar> {
    comm: &'a mut Communicator<T>,
    input: &'a SparseStream<V>,
    root: usize,
    cfg: AllreduceConfig,
    nonblocking: bool,
}

impl<'a, T: Transport + Send + 'static, V: Scalar> Reduce<'a, T, V> {
    /// Sparse→dense switching policy (δ scaling, §5.1).
    pub fn policy(mut self, policy: DensityPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Runs the collective on a helper thread (see
    /// [`Allreduce::nonblocking`]).
    pub fn nonblocking(mut self) -> Self {
        self.nonblocking = true;
        self
    }

    /// Launches the collective.
    pub fn launch(self) -> Result<CollectiveHandle<'a, T, SparseStream<V>>, CollError> {
        let Reduce {
            comm,
            input,
            root,
            cfg,
            nonblocking,
        } = self;
        if nonblocking {
            let input = input.clone();
            comm.launch_spawned(move |tp| {
                sparse_reduce_pooled(tp, &input, root, &cfg, &mut BufferPool::new())
            })
        } else {
            comm.launch_blocking(|tp, pool| sparse_reduce_pooled(tp, input, root, &cfg, pool))
        }
    }
}

/// Fluent builder for broadcast. Created by [`Communicator::broadcast`].
#[must_use = "collective builders do nothing until `launch()`"]
pub struct Broadcast<'a, T: Transport + Send + 'static, V: Scalar> {
    comm: &'a mut Communicator<T>,
    input: &'a SparseStream<V>,
    root: usize,
    nonblocking: bool,
}

impl<'a, T: Transport + Send + 'static, V: Scalar> Broadcast<'a, T, V> {
    /// Runs the collective on a helper thread (see
    /// [`Allreduce::nonblocking`]).
    pub fn nonblocking(mut self) -> Self {
        self.nonblocking = true;
        self
    }

    /// Launches the collective.
    pub fn launch(self) -> Result<CollectiveHandle<'a, T, SparseStream<V>>, CollError> {
        let Broadcast {
            comm,
            input,
            root,
            nonblocking,
        } = self;
        if nonblocking {
            let input = input.clone();
            comm.launch_spawned(move |tp| {
                sparse_broadcast_pooled(tp, &input, root, &mut BufferPool::new())
            })
        } else {
            comm.launch_blocking(|tp, pool| sparse_broadcast_pooled(tp, input, root, pool))
        }
    }
}

/// Fluent builder for reduce-scatter. Created by
/// [`Communicator::reduce_scatter`].
#[must_use = "collective builders do nothing until `launch()`"]
pub struct ReduceScatter<'a, T: Transport + Send + 'static, V: Scalar> {
    comm: &'a mut Communicator<T>,
    input: &'a SparseStream<V>,
    cfg: AllreduceConfig,
    nonblocking: bool,
}

impl<'a, T: Transport + Send + 'static, V: Scalar> ReduceScatter<'a, T, V> {
    /// Sparse→dense switching policy (δ scaling, §5.1).
    pub fn policy(mut self, policy: DensityPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Runs the collective on a helper thread (see
    /// [`Allreduce::nonblocking`]).
    pub fn nonblocking(mut self) -> Self {
        self.nonblocking = true;
        self
    }

    /// Launches the collective.
    pub fn launch(self) -> Result<CollectiveHandle<'a, T, SparseStream<V>>, CollError> {
        let ReduceScatter {
            comm,
            input,
            cfg,
            nonblocking,
        } = self;
        if nonblocking {
            let input = input.clone();
            comm.launch_spawned(move |tp| {
                sparse_reduce_scatter_pooled(tp, &input, &cfg, &mut BufferPool::new())
            })
        } else {
            comm.launch_blocking(|tp, pool| sparse_reduce_scatter_pooled(tp, input, &cfg, pool))
        }
    }
}

/// Fluent builder for sparse allgather. Created by
/// [`Communicator::allgather`].
#[must_use = "collective builders do nothing until `launch()`"]
pub struct Allgather<'a, T: Transport + Send + 'static, V: Scalar> {
    comm: &'a mut Communicator<T>,
    input: &'a SparseStream<V>,
    nonblocking: bool,
}

impl<'a, T: Transport + Send + 'static, V: Scalar> Allgather<'a, T, V> {
    /// Runs the collective on a helper thread (see
    /// [`Allreduce::nonblocking`]).
    pub fn nonblocking(mut self) -> Self {
        self.nonblocking = true;
        self
    }

    /// Launches the collective.
    pub fn launch(self) -> Result<CollectiveHandle<'a, T, Vec<SparseStream<V>>>, CollError> {
        let Allgather {
            comm,
            input,
            nonblocking,
        } = self;
        if nonblocking {
            let input = input.clone();
            comm.launch_spawned(move |tp| {
                sparse_allgather_pooled(tp, &input, &mut BufferPool::new())
            })
        } else {
            comm.launch_blocking(|tp, pool| sparse_allgather_pooled(tp, input, pool))
        }
    }
}

/// Fluent builder for the summing sparse allgather. Created by
/// [`Communicator::allgather_sum`].
#[must_use = "collective builders do nothing until `launch()`"]
pub struct AllgatherSum<'a, T: Transport + Send + 'static, V: Scalar> {
    comm: &'a mut Communicator<T>,
    input: &'a SparseStream<V>,
    nonblocking: bool,
}

impl<'a, T: Transport + Send + 'static, V: Scalar> AllgatherSum<'a, T, V> {
    /// Runs the collective on a helper thread (see
    /// [`Allreduce::nonblocking`]).
    pub fn nonblocking(mut self) -> Self {
        self.nonblocking = true;
        self
    }

    /// Launches the collective.
    pub fn launch(self) -> Result<CollectiveHandle<'a, T, SparseStream<V>>, CollError> {
        let AllgatherSum {
            comm,
            input,
            nonblocking,
        } = self;
        if nonblocking {
            let input = input.clone();
            comm.launch_spawned(move |tp| {
                sparse_allgather_sum_pooled(tp, &input, &mut BufferPool::new())
            })
        } else {
            comm.launch_blocking(|tp, pool| sparse_allgather_sum_pooled(tp, input, pool))
        }
    }
}

/// Fluent builder for the dense block allgather. Created by
/// [`Communicator::allgather_dense`].
#[must_use = "collective builders do nothing until `launch()`"]
pub struct DenseAllgather<'a, T: Transport + Send + 'static, V: Scalar> {
    comm: &'a mut Communicator<T>,
    block: &'a [V],
    nonblocking: bool,
}

impl<'a, T: Transport + Send + 'static, V: Scalar> DenseAllgather<'a, T, V> {
    /// Runs the collective on a helper thread (see
    /// [`Allreduce::nonblocking`]).
    pub fn nonblocking(mut self) -> Self {
        self.nonblocking = true;
        self
    }

    /// Launches the collective.
    pub fn launch(self) -> Result<CollectiveHandle<'a, T, Vec<Vec<V>>>, CollError> {
        let DenseAllgather {
            comm,
            block,
            nonblocking,
        } = self;
        if nonblocking {
            let block = block.to_vec();
            let req = Request::spawn(comm.transport.detach(), move |tp| {
                dense_allgather_pooled(tp, &block, &mut BufferPool::new())
            });
            Ok(CollectiveHandle::in_flight(comm, req))
        } else {
            let out = dense_allgather_pooled(&mut comm.transport, block, &mut comm.pool)?;
            Ok(CollectiveHandle::ready(comm, out))
        }
    }
}

/// Runs `f` once per rank over a `size`-rank virtual-time cluster, each
/// rank wrapped in a `Communicator<Endpoint>`; returns per-rank results
/// indexed by rank. The communicator-level counterpart of
/// [`sparcml_net::run_cluster`].
pub fn run_communicators<R, F>(size: usize, cost: CostModel, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Communicator<Endpoint>) -> R + Sync,
{
    run_cluster(size, cost, |ep| {
        let mut comm = Communicator::new(Transport::detach(ep));
        let out = f(&mut comm);
        *ep = comm.into_transport();
        out
    })
}

/// Runs `f` once per rank over `size` real OS threads, each rank wrapped
/// in a `Communicator<ThreadTransport>` — the same programs as
/// [`run_communicators`] on the real in-process backend.
pub fn run_thread_communicators<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Communicator<ThreadTransport>) -> R + Sync,
{
    run_thread_cluster(size, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let out = f(&mut comm);
        *tp = comm.into_transport();
        out
    })
}

/// Runs `f` once per rank over a `size`-rank loopback **TCP** cluster —
/// real sockets, one OS thread per rank in this process — each rank
/// wrapped in a `Communicator<TcpTransport>`. The in-process sibling of
/// the multi-process path (`sparcml_net::launcher::run_tcp_cluster` +
/// `Communicator::new(TcpTransport::from_env()?)`), with the
/// [`CostModel::loopback_tcp`] planning hint so [`Algorithm::Auto`]'s
/// k-agreement and selection run over the real wire.
pub fn run_tcp_communicators<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Communicator<TcpTransport>) -> R + Sync,
{
    run_tcp_communicators_with(
        size,
        CostModel::loopback_tcp(),
        TransportConfig::default(),
        f,
    )
}

/// [`run_tcp_communicators`] with an explicit planning hint and transport
/// configuration (watchdog/connect deadlines, frame limit).
pub fn run_tcp_communicators_with<R, F>(
    size: usize,
    cost_hint: CostModel,
    config: TransportConfig,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Communicator<TcpTransport>) -> R + Sync,
{
    run_tcp_loopback_cluster(size, cost_hint, config, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let out = f(&mut comm);
        *tp = comm.into_transport();
        out
    })
}

/// Runs `f` once per rank over a `size`-rank loopback cluster on the
/// **reactor** transport — same real sockets and wire protocol as
/// [`run_tcp_communicators`], but each rank is served by a single
/// readiness-driven event loop instead of per-peer I/O threads. Rank
/// programs are interchangeable between the two: this is what the
/// transport parity suites rely on.
pub fn run_reactor_communicators<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Communicator<ReactorTransport>) -> R + Sync,
{
    run_reactor_communicators_with(
        size,
        CostModel::loopback_tcp(),
        TransportConfig::default(),
        f,
    )
}

/// [`run_reactor_communicators`] with an explicit planning hint and
/// transport configuration (watchdog/connect deadlines, frame limit,
/// event-loop batching).
pub fn run_reactor_communicators_with<R, F>(
    size: usize,
    cost_hint: CostModel,
    config: TransportConfig,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Communicator<ReactorTransport>) -> R + Sync,
{
    run_reactor_loopback_cluster(size, cost_hint, config, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let out = f(&mut comm);
        *tp = comm.into_transport();
        out
    })
}

/// Runs a collective program on every rank of a virtual-time cluster and
/// returns the *virtual completion time*: the maximum final clock across
/// ranks. The communicator-level counterpart of
/// [`sparcml_net::max_virtual_time`].
pub fn max_communicator_time<F>(size: usize, cost: CostModel, f: F) -> f64
where
    F: Fn(&mut Communicator<Endpoint>) + Sync,
{
    run_communicators(size, cost, |comm| {
        f(comm);
        comm.clock()
    })
    .into_iter()
    .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_sum;
    use sparcml_stream::random_sparse;

    #[test]
    fn builder_default_is_auto_and_matches_reference() {
        let p = 4;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(4096, 64, 60 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_communicators(p, CostModel::aries(), |comm| {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        for out in outs {
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn same_program_runs_on_both_transports() {
        let p = 4;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(2048, 32, 70 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let virtual_outs = run_communicators(p, CostModel::zero(), |comm| {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        let thread_outs = run_thread_communicators(p, |comm| {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        for outs in [virtual_outs, thread_outs] {
            for out in outs {
                for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                    assert!((g - e).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn rooted_collectives_through_builders() {
        let p = 5;
        let dim = 1024;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, 32, 80 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_communicators(p, CostModel::zero(), |comm| {
            let reduced = comm
                .reduce(&ins[comm.rank()], 2)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            comm.broadcast(&reduced, 2)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        for out in outs {
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn dropped_in_flight_handle_returns_the_transport() {
        let p = 2;
        let clocks = run_communicators(p, CostModel::zero(), |comm| {
            let input = random_sparse::<f32>(256, 8, comm.rank() as u64);
            let handle = comm.allreduce(&input).nonblocking().launch().unwrap();
            drop(handle); // joins + reinstalls, result discarded
                          // The communicator must still be usable for a second round.
            comm.allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            comm.size()
        });
        assert_eq!(clocks, vec![2, 2]);
    }

    #[test]
    fn via_reduce_broadcast_route_matches_reference() {
        let p = 8;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(2048, 64, 90 + r as u64))
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_communicators(p, CostModel::zero(), |comm| {
            comm.allreduce(&ins[comm.rank()])
                .via_reduce_broadcast()
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        for out in outs {
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn panicked_nonblocking_collective_poisons_the_session() {
        let outs = run_communicators(1, CostModel::zero(), |comm| {
            let handle = comm
                .launch_spawned::<SparseStream<f32>, _>(|_tp| panic!("helper thread dies"))
                .unwrap();
            let err = handle.wait().unwrap_err();
            // The transport is gone with the helper thread: later
            // collectives must fail loudly, not run on the placeholder.
            let zero = SparseStream::<f32>::zeros(8);
            let poisoned = comm.allreduce(&zero).launch().is_err();
            (err.to_string(), poisoned)
        });
        let (msg, poisoned) = &outs[0];
        assert!(msg.contains("panicked"), "unexpected error: {msg}");
        assert!(poisoned, "session must be poisoned after a lost transport");
    }

    #[test]
    fn max_communicator_time_reports_slowest_rank() {
        let cost = CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
            isend_alpha_fraction: 0.0,
        };
        let t = max_communicator_time(4, cost, |comm| {
            comm.compute(comm.rank());
        });
        assert_eq!(t, 3.0);
    }
}
