//! Cluster-wide telemetry exchange: the allgather that turns each rank's
//! local [`sparcml_obs::TelemetryFrame`] into a consistent
//! [`sparcml_obs::ClusterReport`] on every rank.
//!
//! Frames travel over the reserved *control* tag region (bit 63), in a
//! block range disjoint from the progress engine's agreement channel
//! (which allocates control blocks from 0): telemetry draws blocks from
//! [`TELEMETRY_CONTROL_BASE`] upward. As with every control-channel user,
//! the contract is lockstep — all ranks of a session call the exchange
//! the same number of times, so the `n`-th exchange uses the same block
//! everywhere and never collides with data traffic or agreement rounds.
//!
//! The exchange itself is a plain ring allgather of encoded frames
//! (`P-1` rounds, each rank forwarding the newest frame it holds). Peer
//! bytes are *untrusted*: every received blob goes through the versioned
//! [`TelemetryFrame::decode`] codec and a malformed, truncated, or
//! impossible frame (rank out of range, duplicate origin) surfaces as
//! [`CollError::Invalid`] instead of poisoning the report.

use sparcml_net::{TagBlockAllocator, Transport};
use sparcml_obs::TelemetryFrame;

use crate::error::CollError;

/// First control-region block id reserved for telemetry exchanges.
///
/// The progress engine's agreement channel allocates control blocks
/// sequentially from 0; starting the telemetry allocator at `2^40`
/// partitions the control region so the two subsystems can never race
/// for a tag even after astronomically many agreement rounds.
pub const TELEMETRY_CONTROL_BASE: u64 = 1 << 40;

/// Per-session telemetry tag-block allocator (one per communicator).
///
/// Holds the deterministic sequence position so repeated
/// [`TelemetryExchange::allgather`] calls use fresh, cluster-consistent
/// blocks.
#[derive(Debug)]
pub(crate) struct TelemetryExchange {
    alloc: TagBlockAllocator,
    /// Monotonic exchange counter; doubles as the frame sequence number.
    seq: u64,
}

impl TelemetryExchange {
    pub(crate) fn new() -> TelemetryExchange {
        TelemetryExchange {
            alloc: TagBlockAllocator::starting_at(TELEMETRY_CONTROL_BASE),
            seq: 0,
        }
    }

    /// The sequence number the *next* exchange will stamp on its frame.
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Ring-allgathers this rank's encoded `frame` and returns every
    /// rank's decoded frame (self included), sorted by origin rank.
    ///
    /// Collective: every rank must call with its own frame. `P-1`
    /// rounds; round `t` forwards the frame originated by rank
    /// `(rank - t) mod P` to the right neighbour while receiving rank
    /// `(rank - t - 1) mod P`'s frame from the left.
    pub(crate) fn allgather<T: Transport>(
        &mut self,
        ep: &mut T,
        frame: &TelemetryFrame,
    ) -> Result<Vec<TelemetryFrame>, CollError> {
        self.seq += 1;
        let p = ep.size();
        let rank = ep.rank();
        let block = self.alloc.next_block();
        let world = p as u32;

        let mut frames: Vec<Option<TelemetryFrame>> = (0..p).map(|_| None).collect();
        let mut blobs: Vec<Option<bytes::Bytes>> = (0..p).map(|_| None).collect();
        blobs[rank] = Some(bytes::Bytes::from(frame.encode()));
        frames[rank] = Some(frame.clone());
        if p == 1 {
            return Ok(frames.into_iter().flatten().collect());
        }

        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        for t in 0..p - 1 {
            let send_origin = (rank + p - t % p) % p;
            let recv_origin = (rank + p - (t + 1) % p) % p;
            let payload = blobs[send_origin]
                .clone()
                .expect("ring invariant: frame for this round already held");
            ep.send(next, block.tag(t as u64), payload)
                .map_err(CollError::Comm)?;
            let raw = ep
                .recv(prev, block.tag(t as u64))
                .map_err(CollError::Comm)?;
            let decoded = TelemetryFrame::decode(&raw).map_err(|e| {
                CollError::Invalid(format!("telemetry frame from rank {recv_origin}: {e}"))
            })?;
            if decoded.rank as usize >= p || decoded.world != world {
                return Err(CollError::Invalid(format!(
                    "telemetry frame claims rank {}/{} in a {p}-rank cluster",
                    decoded.rank, decoded.world
                )));
            }
            if decoded.rank as usize != recv_origin {
                return Err(CollError::Invalid(format!(
                    "telemetry ring expected rank {recv_origin}'s frame, got rank {}",
                    decoded.rank
                )));
            }
            if frames[recv_origin].is_some() {
                return Err(CollError::Invalid(format!(
                    "duplicate telemetry frame for rank {recv_origin}"
                )));
            }
            blobs[recv_origin] = Some(raw);
            frames[recv_origin] = Some(decoded);
        }

        Ok(frames.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparcml_net::{run_cluster, CostModel};

    fn frame_for(rank: u32, world: u32, seq: u64) -> TelemetryFrame {
        TelemetryFrame {
            rank,
            world,
            seq,
            compute_ns: 1_000 * (rank as u64 + 1),
            counters: vec![("msgs_sent".into(), rank as u64 * 7)],
            ..TelemetryFrame::default()
        }
    }

    #[test]
    fn ring_allgather_delivers_every_frame_in_rank_order() {
        let reports = run_cluster(5, CostModel::gige(), |ep| {
            let rank = ep.rank() as u32;
            let mut ex = TelemetryExchange::new();
            let frames = ex
                .allgather(ep, &frame_for(rank, 5, ex.next_seq()))
                .unwrap();
            assert_eq!(ex.next_seq(), 1);
            frames
        });
        for frames in reports {
            assert_eq!(frames.len(), 5);
            for (i, f) in frames.iter().enumerate() {
                assert_eq!(f.rank as usize, i);
                assert_eq!(f.world, 5);
                assert_eq!(f.compute_ns, 1_000 * (i as u64 + 1));
                assert_eq!(f.counters, vec![("msgs_sent".to_string(), i as u64 * 7)]);
            }
        }
    }

    #[test]
    fn repeated_exchanges_use_fresh_blocks_and_single_rank_is_trivial() {
        let frames = run_cluster(1, CostModel::gige(), |ep| {
            let mut ex = TelemetryExchange::new();
            let a = ex.allgather(ep, &frame_for(0, 1, 0)).unwrap();
            let b = ex.allgather(ep, &frame_for(0, 1, 1)).unwrap();
            (a.len(), b.len(), ex.next_seq())
        });
        assert_eq!(frames[0], (1, 1, 2));
    }

    #[test]
    fn corrupt_peer_frame_is_a_typed_invalid_error() {
        // Two ranks; rank 1 sends garbage bytes on the telemetry tag
        // instead of a frame, rank 0 must fail with Invalid (not panic,
        // not a bogus report).
        let results = run_cluster(2, CostModel::gige(), |ep| {
            let rank = ep.rank();
            let mut ex = TelemetryExchange::new();
            if rank == 1 {
                let block = TagBlockAllocator::starting_at(TELEMETRY_CONTROL_BASE).next_block();
                ep.send(0, block.tag(0), bytes::Bytes::from_static(b"not a frame"))
                    .unwrap();
                // Drain rank 0's send so the virtual cluster quiesces.
                let _ = ep.recv(0, block.tag(0)).unwrap();
                None
            } else {
                Some(ex.allgather(ep, &frame_for(0, 2, 0)))
            }
        });
        let err = results[0].as_ref().unwrap().as_ref().unwrap_err();
        assert!(
            matches!(err, CollError::Invalid(msg) if msg.contains("telemetry frame")),
            "unexpected error: {err:?}"
        );
    }
}
