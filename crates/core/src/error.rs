//! Error type unifying transport and data-representation failures.

use std::fmt;

use sparcml_net::CommError;
use sparcml_stream::StreamError;

/// Errors surfaced by collective operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CollError {
    /// Transport-level failure.
    Comm(CommError),
    /// Stream validation / decoding failure.
    Stream(StreamError),
    /// The operation was invoked with inconsistent arguments.
    Invalid(String),
}

impl fmt::Display for CollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollError::Comm(e) => write!(f, "communication error: {e}"),
            CollError::Stream(e) => write!(f, "stream error: {e}"),
            CollError::Invalid(msg) => write!(f, "invalid collective call: {msg}"),
        }
    }
}

impl std::error::Error for CollError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollError::Comm(e) => Some(e),
            CollError::Stream(e) => Some(e),
            CollError::Invalid(_) => None,
        }
    }
}

impl From<CommError> for CollError {
    fn from(e: CommError) -> Self {
        CollError::Comm(e)
    }
}

impl From<StreamError> for CollError {
    fn from(e: StreamError) -> Self {
        CollError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CollError = CommError::PeerDisconnected { peer: 2 }.into();
        assert!(e.to_string().contains("communication"));
        let e: CollError = StreamError::Corrupt("x").into();
        assert!(e.to_string().contains("stream"));
        let e = CollError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
