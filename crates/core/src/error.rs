//! Error type unifying transport and data-representation failures.

use std::fmt;

use sparcml_net::CommError;
use sparcml_stream::StreamError;

/// Errors surfaced by collective operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CollError {
    /// Transport-level failure.
    Comm(CommError),
    /// Stream validation / decoding failure.
    Stream(StreamError),
    /// A helper thread (a non-blocking collective worker or a progress
    /// engine) panicked and took its transport with it.
    WorkerPanicked {
        /// Name of the dead thread (e.g. `sparcml-nb-3`).
        thread: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The operation was invoked with inconsistent arguments.
    Invalid(String),
}

impl CollError {
    /// Builds a [`CollError::WorkerPanicked`] from a thread name and the
    /// payload a panicking thread left behind (`std::thread::JoinHandle`'s
    /// `Err` value), extracting the message when it is a string.
    pub fn worker_panicked(thread: &str, payload: &(dyn std::any::Any + Send)) -> CollError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        CollError::WorkerPanicked {
            thread: thread.to_string(),
            message,
        }
    }
}

impl fmt::Display for CollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollError::Comm(e) => write!(f, "communication error: {e}"),
            CollError::Stream(e) => write!(f, "stream error: {e}"),
            CollError::WorkerPanicked { thread, message } => {
                write!(f, "worker thread '{thread}' panicked: {message}")
            }
            CollError::Invalid(msg) => write!(f, "invalid collective call: {msg}"),
        }
    }
}

impl std::error::Error for CollError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollError::Comm(e) => Some(e),
            CollError::Stream(e) => Some(e),
            CollError::WorkerPanicked { .. } => None,
            CollError::Invalid(_) => None,
        }
    }
}

impl From<CommError> for CollError {
    fn from(e: CommError) -> Self {
        CollError::Comm(e)
    }
}

impl From<StreamError> for CollError {
    fn from(e: StreamError) -> Self {
        CollError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CollError = CommError::PeerDisconnected { peer: 2 }.into();
        assert!(e.to_string().contains("communication"));
        let e: CollError = StreamError::Corrupt("x").into();
        assert!(e.to_string().contains("stream"));
        let e = CollError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn worker_panicked_extracts_string_payloads() {
        let e = CollError::worker_panicked("sparcml-nb-2", &"boom");
        assert_eq!(
            e,
            CollError::WorkerPanicked {
                thread: "sparcml-nb-2".into(),
                message: "boom".into(),
            }
        );
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("sparcml-nb-2"));
        let e = CollError::worker_panicked("t", &String::from("owned"));
        assert!(e.to_string().contains("owned"));
        let e = CollError::worker_panicked("t", &42usize);
        assert!(e.to_string().contains("non-string"));
    }
}
