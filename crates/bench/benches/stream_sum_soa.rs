//! Criterion: structure-of-arrays summation kernels — the slab merge,
//! scatter and restrict paths the collectives are built on, plus an
//! array-of-structs merge baseline for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcml_stream::{random_sparse, DensityPolicy};

/// AoS merge baseline: interleaved pair lists merged entry by entry, the
/// shape of the pre-SoA summation kernel.
fn merge_aos(a: &[(u32, f32)], b: &[(u32, f32)]) -> Vec<(u32, f32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn bench_sum_soa(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_sum_soa");
    let dim = 1 << 22;
    for nnz in [1usize << 10, 100_000, 1 << 18] {
        let x = random_sparse::<f32>(dim, nnz, 1);
        let y = random_sparse::<f32>(dim, nnz, 2);
        let xa: Vec<(u32, f32)> = x.sparse_view().unwrap().iter().collect();
        let ya: Vec<(u32, f32)> = y.sparse_view().unwrap().iter().collect();

        group.bench_with_input(BenchmarkId::new("merge_aos_baseline", nnz), &nnz, |b, _| {
            b.iter(|| merge_aos(&xa, &ya).len())
        });
        group.bench_with_input(BenchmarkId::new("merge_soa", nnz), &nnz, |b, _| {
            b.iter(|| {
                let mut acc = x.clone();
                acc.add_assign_with(&y, &DensityPolicy::never_densify())
                    .unwrap();
                acc.stored_len()
            })
        });
        group.bench_with_input(BenchmarkId::new("restrict_view", nnz), &nnz, |b, _| {
            b.iter(|| {
                // 16-way split via borrowed views (the split-phase kernel).
                let view = x.sparse_view().unwrap();
                let mut total = 0usize;
                for part in 0..16u32 {
                    let lo = part * (dim as u32 / 16);
                    let hi = lo + dim as u32 / 16;
                    total += view.range(lo, hi).len();
                }
                total
            })
        });
    }
    group.bench_function("scatter_into_dense/100000", |b| {
        let mut x = random_sparse::<f32>(dim, 100_000, 3);
        x.densify();
        let y = random_sparse::<f32>(dim, 100_000, 4);
        b.iter(|| {
            let mut acc = x.clone();
            acc.add_assign(&y).unwrap();
            acc.is_dense()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sum_soa
}
criterion_main!(benches);
