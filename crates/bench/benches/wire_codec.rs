//! Criterion: wire codec throughput — slab (v2, SoA) codec vs the
//! array-of-structs v1 baseline it replaced.
//!
//! The baseline below reimplements the seed's encoder/decoder faithfully:
//! interleaved `(u32 idx, value)` pairs, each value written through a
//! per-entry scratch `Vec`, decoded entry by entry into a pair list. The
//! acceptance bar for the SoA refactor is ≥ 2× encode throughput at
//! k = 10⁵, f32 (see BENCH_wire.json for recorded numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcml_stream::{random_sparse, Scalar, SparseStream};

/// v1 (AoS) encoder: header + interleaved entries via per-entry scratch.
fn encode_aos_v1<V: Scalar>(indices: &[u32], values: &[V], dim: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(19 + indices.len() * (4 + V::BYTES));
    buf.push(0xC5);
    buf.push(V::BYTES as u8);
    buf.push(0); // sparse tag
    buf.extend_from_slice(&(dim as u64).to_le_bytes());
    buf.extend_from_slice(&(indices.len() as u64).to_le_bytes());
    let mut scratch = Vec::with_capacity(V::BYTES);
    for (i, v) in indices.iter().zip(values) {
        buf.extend_from_slice(&i.to_le_bytes());
        scratch.clear();
        v.write_le(&mut scratch);
        buf.extend_from_slice(&scratch);
    }
    buf
}

/// v1 (AoS) decoder: entry-by-entry reads into an interleaved pair list.
fn decode_aos_v1<V: Scalar>(bytes: &[u8]) -> (usize, Vec<(u32, V)>) {
    let dim = u64::from_le_bytes(bytes[3..11].try_into().unwrap()) as usize;
    let nnz = u64::from_le_bytes(bytes[11..19].try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(nnz);
    let mut rest = &bytes[19..];
    for _ in 0..nnz {
        let idx = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let val = V::read_le(&rest[4..4 + V::BYTES]);
        rest = &rest[4 + V::BYTES..];
        entries.push((idx, val));
    }
    (dim, entries)
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let dim = 1 << 24;
    for k in [1usize << 10, 100_000, 1 << 20] {
        let stream = random_sparse::<f32>(dim, k, 7);
        let view = stream.sparse_view().unwrap();
        let (indices, values) = (view.indices().to_vec(), view.values().to_vec());

        group.bench_with_input(BenchmarkId::new("encode_aos_v1", k), &k, |b, _| {
            b.iter(|| encode_aos_v1(&indices, &values, dim).len())
        });
        group.bench_with_input(BenchmarkId::new("encode_soa_v2", k), &k, |b, _| {
            let mut buf = Vec::new();
            b.iter(|| {
                stream.encode_into(&mut buf);
                buf.len()
            })
        });

        let v1_frame = encode_aos_v1(&indices, &values, dim);
        let v2_frame = stream.encode();
        group.bench_with_input(BenchmarkId::new("decode_aos_v1", k), &k, |b, _| {
            b.iter(|| decode_aos_v1::<f32>(&v1_frame).1.len())
        });
        group.bench_with_input(BenchmarkId::new("decode_soa_v2", k), &k, |b, _| {
            b.iter(|| SparseStream::<f32>::decode(&v2_frame).unwrap().stored_len())
        });
    }

    // Dense frames: the bulk value-slab path.
    let dense = SparseStream::from_dense(vec![1.0f32; 1 << 20]);
    group.bench_function("encode_dense_soa_v2/1048576", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            dense.encode_into(&mut buf);
            buf.len()
        })
    });
    let dense_frame = dense.encode();
    group.bench_function("decode_dense_soa_v2/1048576", |b| {
        b.iter(|| SparseStream::<f32>::decode(&dense_frame).unwrap().dim())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wire_codec
}
criterion_main!(benches);
