//! Criterion: sparse stream summation kernels (§5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcml_stream::{random_sparse, DensityPolicy, SparseStream};

fn bench_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_sum");
    let dim = 1 << 20;
    for nnz in [1 << 8, 1 << 12, 1 << 16] {
        group.bench_with_input(BenchmarkId::new("sparse+sparse", nnz), &nnz, |b, &nnz| {
            let x = random_sparse::<f32>(dim, nnz, 1);
            let y = random_sparse::<f32>(dim, nnz, 2);
            b.iter(|| {
                let mut acc = x.clone();
                acc.add_assign_with(&y, &DensityPolicy::never_densify())
                    .unwrap();
                acc.nnz()
            });
        });
    }
    group.bench_function("dense+sparse", |b| {
        let mut x = random_sparse::<f32>(dim, 1 << 12, 3);
        x.densify();
        let y = random_sparse::<f32>(dim, 1 << 12, 4);
        b.iter(|| {
            let mut acc = x.clone();
            acc.add_assign(&y).unwrap();
            acc.is_dense()
        });
    });
    group.bench_function("dense+dense", |b| {
        let x = SparseStream::from_dense(vec![1.0f32; dim]);
        let y = SparseStream::from_dense(vec![2.0f32; dim]);
        b.iter(|| {
            let mut acc = x.clone();
            acc.add_assign(&y).unwrap();
            acc.dim()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sum
}
criterion_main!(benches);
