//! Criterion: bucket-wise Top-k selection with error feedback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcml_opt::{topk_bucketwise, ErrorFeedback, TopKConfig};
use sparcml_stream::XorShift64;

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    let mut rng = XorShift64::new(5);
    for dim in [1 << 16, 1 << 20] {
        let values: Vec<f32> = (0..dim).map(|_| rng.next_gaussian() as f32).collect();
        for k in [1usize, 4, 16] {
            let cfg = TopKConfig {
                k_per_bucket: k,
                bucket_size: 512,
            };
            group.bench_with_input(
                BenchmarkId::new(format!("select_k{k}"), dim),
                &values,
                |b, v| b.iter(|| topk_bucketwise(v, &cfg).stored_len()),
            );
        }
        let cfg = TopKConfig {
            k_per_bucket: 4,
            bucket_size: 512,
        };
        group.bench_with_input(BenchmarkId::new("error_feedback", dim), &values, |b, v| {
            let mut ef = ErrorFeedback::new(v.len(), cfg);
            b.iter(|| ef.compress(v).stored_len());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_topk
}
criterion_main!(benches);
