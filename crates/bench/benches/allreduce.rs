//! Criterion: wall-clock time of the actual collectives on an in-process
//! cluster (complements the virtual-time figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcml_core::{run_communicators, Algorithm};
use sparcml_net::CostModel;
use sparcml_stream::random_sparse;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_wall");
    let n = 1 << 18;
    let k = 1 << 10;
    let p = 8;
    for algo in [
        Algorithm::SsarRecDbl,
        Algorithm::SsarSplitAllgather,
        Algorithm::DsarSplitAllgather,
        Algorithm::DenseRabenseifner,
    ] {
        group.bench_with_input(BenchmarkId::new(algo.name(), p), &algo, |b, &algo| {
            b.iter(|| {
                run_communicators(p, CostModel::zero(), |comm| {
                    let input = random_sparse::<f32>(n, k, comm.rank() as u64);
                    comm.allreduce(&input)
                        .algorithm(algo)
                        .launch()
                        .and_then(|handle| handle.wait())
                        .unwrap()
                        .nnz()
                })
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allreduce
}
criterion_main!(benches);
