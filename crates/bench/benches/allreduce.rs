//! Criterion: wall-clock time of the actual collectives on an in-process
//! cluster (complements the virtual-time figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcml_core::{allreduce, Algorithm, AllreduceConfig};
use sparcml_net::{run_cluster, CostModel};
use sparcml_stream::random_sparse;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_wall");
    let n = 1 << 18;
    let k = 1 << 10;
    let p = 8;
    for algo in [
        Algorithm::SsarRecDbl,
        Algorithm::SsarSplitAllgather,
        Algorithm::DsarSplitAllgather,
        Algorithm::DenseRabenseifner,
    ] {
        group.bench_with_input(BenchmarkId::new(algo.name(), p), &algo, |b, &algo| {
            b.iter(|| {
                run_cluster(p, CostModel::zero(), |ep| {
                    let input = random_sparse::<f32>(n, k, ep.rank() as u64);
                    allreduce(ep, &input, algo, &AllreduceConfig::default()).unwrap().nnz()
                })
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allreduce
}
criterion_main!(benches);
