//! Criterion: QSGD quantize/dequantize throughput (§6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparcml_quant::{dequantize, quantize, QsgdConfig};
use sparcml_stream::XorShift64;

fn bench_qsgd(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsgd");
    let mut rng = XorShift64::new(7);
    let dim = 1 << 20;
    let values: Vec<f32> = (0..dim).map(|_| rng.next_gaussian() as f32).collect();
    for bits in [2u8, 4, 8] {
        let cfg = QsgdConfig::with_bits(bits);
        group.bench_with_input(BenchmarkId::new("quantize", bits), &values, |b, v| {
            let mut r = XorShift64::new(9);
            b.iter(|| quantize(v, &cfg, &mut r).wire_bytes());
        });
        let q = quantize(&values, &cfg, &mut XorShift64::new(9));
        group.bench_with_input(BenchmarkId::new("dequantize", bits), &q, |b, q| {
            b.iter(|| dequantize(q).len());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_qsgd
}
criterion_main!(benches);
