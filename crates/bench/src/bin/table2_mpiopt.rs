//! Table 2: distributed optimization using MPI-OPT.
//!
//! For each (system, dataset, model, node count) row of the paper's
//! Table 2, trains a linear classifier with the dense-allreduce baseline
//! and with the named SparCML algorithm, and reports average epoch time
//! with the communication part in brackets, plus end-to-end and
//! communication speedups — the same format as the paper.
//!
//! Expected shape: sparse rec-dbl ≈ 2.5–3.5x end-to-end at 32 nodes on the
//! fast network; split-allgather ≈ 1.3–2.5x at 8 nodes; on GigE the
//! speedups grow to >10x because the dense baseline is bandwidth-starved.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::Algorithm;
use sparcml_net::CostModel;
use sparcml_opt::data::{generate_sparse, SparseDataset, SparseGenConfig};
use sparcml_opt::loss::LinearLoss;
use sparcml_opt::sgd::{train_distributed, SgdConfig};
use sparcml_opt::LrSchedule;

struct Row {
    system: &'static str,
    cost: CostModel,
    dataset: &'static str,
    model: &'static str,
    loss: LinearLoss,
    nodes: usize,
    algorithm: Algorithm,
}

fn dataset_for(name: &str, args: &BenchArgs, samples: usize) -> SparseDataset {
    match name {
        "URL" => {
            let mut cfg = SparseGenConfig::url_like(samples);
            cfg.dim = args.dim(cfg.dim);
            generate_sparse(&cfg)
        }
        "Webspam" => {
            let mut cfg = SparseGenConfig::webspam_like(samples);
            cfg.dim = args.dim(cfg.dim);
            // Webspam's 3730 nnz/sample is heavy to synthesize; scale with
            // the dimension but stay well above URL's density.
            cfg.nnz_per_sample = ((3730.0 * args.scale.max(0.1)) as usize).clamp(200, 3730);
            generate_sparse(&cfg)
        }
        other => unreachable!("unknown dataset {other}"),
    }
}

fn main() {
    let mut args = BenchArgs::parse();
    // Table 2 needs enough feature-space headroom for the sparse regime;
    // default to quarter-scale dimensions (run --scale/--full to change).
    args.scale = args.scale_or(0.25);
    header(
        "Table 2",
        "Distributed optimization using MPI-OPT. Times are per full dataset pass,\n\
         communication part in brackets. Speedup vs dense MPI allreduce is end-to-end,\n\
         with communication speedup in brackets.",
    );

    let rows = vec![
        Row {
            system: "Piz Daint",
            cost: CostModel::aries(),
            dataset: "Webspam",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 32,
            algorithm: Algorithm::SsarRecDbl,
        },
        Row {
            system: "Piz Daint",
            cost: CostModel::aries(),
            dataset: "Webspam",
            model: "SVM",
            loss: LinearLoss::Hinge,
            nodes: 32,
            algorithm: Algorithm::SsarRecDbl,
        },
        Row {
            system: "Piz Daint",
            cost: CostModel::aries(),
            dataset: "URL",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 32,
            algorithm: Algorithm::SsarRecDbl,
        },
        Row {
            system: "Piz Daint",
            cost: CostModel::aries(),
            dataset: "URL",
            model: "SVM",
            loss: LinearLoss::Hinge,
            nodes: 32,
            algorithm: Algorithm::SsarRecDbl,
        },
        Row {
            system: "Piz Daint",
            cost: CostModel::aries(),
            dataset: "Webspam",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 8,
            algorithm: Algorithm::SsarSplitAllgather,
        },
        Row {
            system: "Piz Daint",
            cost: CostModel::aries(),
            dataset: "URL",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 8,
            algorithm: Algorithm::SsarSplitAllgather,
        },
        Row {
            system: "Greina (IB)",
            cost: CostModel::infiniband(),
            dataset: "Webspam",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 8,
            algorithm: Algorithm::SsarSplitAllgather,
        },
        Row {
            system: "Greina (IB)",
            cost: CostModel::infiniband(),
            dataset: "URL",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 8,
            algorithm: Algorithm::SsarSplitAllgather,
        },
        Row {
            system: "Greina (GigE)",
            cost: CostModel::gige(),
            dataset: "Webspam",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 8,
            algorithm: Algorithm::SsarSplitAllgather,
        },
        Row {
            system: "Greina (GigE)",
            cost: CostModel::gige(),
            dataset: "URL",
            model: "LR",
            loss: LinearLoss::Logistic,
            nodes: 8,
            algorithm: Algorithm::SsarSplitAllgather,
        },
    ];

    let widths = vec![13usize, 9, 6, 7, 18, 22, 18, 14];
    print_row(
        [
            "system",
            "dataset",
            "model",
            "nodes",
            "baseline(comm)",
            "algorithm",
            "sparcml(comm)",
            "speedup(comm)",
        ]
        .map(String::from)
        .as_ref(),
        &widths,
    );

    // Batch per node ~ the paper's 1000, scaled so each rank gets >= 2
    // batches per epoch.
    for row in rows {
        let batch = if args.full { 1000 } else { 100 };
        let samples = (row.nodes * batch * 2).max(512);
        let ds = dataset_for(row.dataset, &args, samples);
        let base_cfg = SgdConfig {
            loss: row.loss,
            lr: LrSchedule::Const(0.3),
            batch_per_node: batch,
            epochs: 1,
            algorithm: Algorithm::DenseRabenseifner,
            ..Default::default()
        };
        let sparse_cfg = SgdConfig {
            algorithm: row.algorithm,
            ..base_cfg.clone()
        };
        let dense = train_distributed(&ds, row.nodes, row.cost, &base_cfg);
        let sparse = train_distributed(&ds, row.nodes, row.cost, &sparse_cfg);
        let (dt, dc) = (dense.epochs[0].total_time, dense.epochs[0].comm_time);
        let (st, sc) = (sparse.epochs[0].total_time, sparse.epochs[0].comm_time);
        print_row(
            &[
                row.system.to_string(),
                row.dataset.to_string(),
                row.model.to_string(),
                row.nodes.to_string(),
                format!("{}({})", fmt_time(dt), fmt_time(dc)),
                row.algorithm.name().to_string(),
                format!("{}({})", fmt_time(st), fmt_time(sc)),
                format!("{:.2}x({:.2}x)", dt / st, dc / sc),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "(feature dims scaled by --scale {}; paper dims with --full. Convergence is\n\
         identical between baseline and SparCML rows: the sparse collectives are lossless.)",
        args.scale
    );
}
