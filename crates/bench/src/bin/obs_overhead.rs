//! Observability cost + calibration-convergence benchmark
//! (BENCH_obs.json).
//!
//! Two questions, one harness:
//!
//! 1. **What does the instrumentation cost?** The span macros compile to
//!    one relaxed atomic load when no recorder is installed; this
//!    measures that path directly (ns per `span()` call, disabled vs
//!    enabled) and end-to-end on the BENCH_reactor grid point the
//!    acceptance bar names — reactor transport, P = 8, k = 1e3,
//!    N = 2^20 — with the recorder uninstalled vs installed. The
//!    uninstalled time is comparable against the pre-instrumentation
//!    BENCH_reactor.json figure for the same point.
//!
//! 2. **Does calibration converge?** Replays the mis-pick scenario of
//!    `tests/calibrated_auto.rs` on the virtual-time cluster — the
//!    planning hint says α-bound, the clock charges β-bound — and logs
//!    the per-iteration pick of a calibrating `Auto` session until it
//!    locks onto the empirically fastest schedule.
//!
//! ```console
//! cargo run --release -p sparcml-bench --bin obs_overhead > BENCH_obs.json
//! ```

use std::time::{Duration, Instant};

use sparcml_core::{
    max_communicator_time, run_communicators, select_algorithm, Algorithm, Communicator, Transport,
};
use sparcml_net::{run_reactor_loopback_cluster, CostModel, TransportConfig};
use sparcml_obs as obs;
use sparcml_stream::{random_sparse, SparseStream};

const DIM: usize = 1 << 20;
const K: usize = 1_000;
const P: usize = 8;
const TRIALS: usize = 5;
const ALGO: Algorithm = Algorithm::SsarRecDbl;

// --- span-call microcost -------------------------------------------------

fn span_call_ns(iters: u64) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        let g = obs::span_with(obs::Category::Phase, "bench-span", i);
        std::hint::black_box(&g);
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

// --- end-to-end reactor overhead ----------------------------------------

/// Fastest trial (max across ranks within a trial, min across trials):
/// the noise-floor statistic — on a shared host, slower trials measure
/// the neighbors, not the code.
fn reactor_min_us() -> f64 {
    let config = TransportConfig::default()
        .with_recv_timeout(Duration::from_secs(300))
        .with_connect_timeout(Duration::from_secs(300));
    let per_rank = run_reactor_loopback_cluster(P, CostModel::loopback_tcp(), config, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let input = random_sparse::<f32>(DIM, K, 4200 + comm.rank() as u64);
        let mut times = Vec::with_capacity(TRIALS);
        for trial in 0..=TRIALS {
            let start = Instant::now();
            let out = comm
                .allreduce(&input)
                .algorithm(ALGO)
                .launch()
                .and_then(|h| h.wait())
                .expect("allreduce over loopback sockets");
            assert_eq!(out.dim(), DIM);
            if trial > 0 {
                times.push(start.elapsed().as_secs_f64());
            }
        }
        *tp = comm.into_transport();
        times
    });
    (0..TRIALS)
        .map(|t| per_rank.iter().map(|r| r[t]).fold(0.0, f64::max))
        .fold(f64::INFINITY, f64::min)
        * 1e6
}

// --- calibration convergence ---------------------------------------------

const CAL_DIM: usize = 1 << 18;
const CAL_K: usize = 100_000;
const CAL_ITERS: usize = 14;

fn hinted_cost() -> CostModel {
    CostModel {
        alpha: 5e-3,
        beta: 1e-12,
        gamma: 0.0,
        isend_alpha_fraction: 0.0,
    }
}

fn actual_cost() -> CostModel {
    CostModel {
        alpha: 1e-7,
        beta: 5e-8,
        gamma: 0.0,
        isend_alpha_fraction: 0.0,
    }
}

const CANDIDATES: [Algorithm; 4] = [
    Algorithm::DsarSplitAllgather,
    Algorithm::DenseRabenseifner,
    Algorithm::DenseRing,
    Algorithm::DenseRecDbl,
];

struct Convergence {
    pinned_s: Vec<(Algorithm, f64)>,
    preset: Algorithm,
    best: Algorithm,
    /// (pick, virtual duration) per iteration, from rank 0.
    trajectory: Vec<(&'static str, f64)>,
    converged: Algorithm,
}

fn calibration_convergence() -> Convergence {
    let inputs: Vec<SparseStream<f32>> = (0..P)
        .map(|r| random_sparse(CAL_DIM, CAL_K, 7 + r as u64))
        .collect();
    let pinned_s: Vec<(Algorithm, f64)> = CANDIDATES
        .iter()
        .map(|&algo| {
            let ins = inputs.clone();
            let t = max_communicator_time(P, actual_cost(), |comm| {
                comm.allreduce(&ins[comm.rank()])
                    .algorithm(algo)
                    .launch()
                    .and_then(|h| h.wait())
                    .unwrap();
            });
            (algo, t)
        })
        .collect();
    let best = pinned_s
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0;
    let preset = select_algorithm::<f32>(P, CAL_DIM, CAL_K, &hinted_cost());

    let ins = inputs.clone();
    let mut per_rank = run_communicators(P, actual_cost(), |comm| {
        comm.transport_mut().set_cost_hint(hinted_cost());
        let cal = comm.enable_calibration();
        let mut trajectory = Vec::with_capacity(CAL_ITERS);
        for _ in 0..CAL_ITERS {
            let pick = cal.select::<f32>(P, CAL_DIM, CAL_K);
            let before = comm.clock();
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            trajectory.push((pick.name(), comm.clock() - before));
        }
        (trajectory, cal.select::<f32>(P, CAL_DIM, CAL_K))
    });
    let (trajectory, converged) = per_rank.remove(0);
    Convergence {
        pinned_s,
        preset,
        best,
        trajectory,
        converged,
    }
}

// --- report ---------------------------------------------------------------

fn main() {
    let span_iters = 20_000_000u64;
    assert!(!obs::enabled(), "benchmark must start with no recorder");
    let disabled_ns = span_call_ns(span_iters);
    obs::Recorder::install(obs::RecorderConfig::default());
    let enabled_ns = span_call_ns(span_iters);
    obs::Recorder::uninstall();

    eprintln!("span call: disabled {disabled_ns:.2} ns, enabled {enabled_ns:.2} ns");

    // Interleave the configurations across rounds so slow phases of a
    // shared host hit all equally; keep the per-config minimum.
    let mut uninstalled_us = f64::INFINITY;
    let mut installed_us = f64::INFINITY;
    let mut telemetry_us = f64::INFINITY;
    let mut spans_hit: u64 = 0;
    for round in 0..3 {
        let t = reactor_min_us();
        uninstalled_us = uninstalled_us.min(t);
        obs::Recorder::install(obs::RecorderConfig::default());
        let t = reactor_min_us();
        installed_us = installed_us.min(t);
        let drained = obs::Recorder::uninstall();
        spans_hit = spans_hit.max(
            drained
                .iter()
                .map(|t| t.spans.len() as u64 + t.dropped)
                .sum(),
        );
        // Telemetry collection (no recorder): peer-wait Instant pairs
        // around every tracked recv, density samples per collective —
        // the cluster-report acceptance bar is <5% over baseline.
        obs::telemetry::enable();
        let t = reactor_min_us();
        telemetry_us = telemetry_us.min(t);
        obs::telemetry::disable();
        eprintln!(
            "round {round}: uninstalled {uninstalled_us:.0} us, installed {installed_us:.0} us, telemetry {telemetry_us:.0} us"
        );
    }
    // The acceptance figure: with no recorder, each span site costs one
    // relaxed load. Project that onto the sites one cluster run actually
    // hits (counted from the installed run's rings, clipped low by ring
    // drops — so if anything an overestimate per trial).
    let spans_per_trial = spans_hit as f64 / (TRIALS + 1) as f64;
    let projected_disabled_pct = spans_per_trial * disabled_ns / (uninstalled_us * 1000.0) * 100.0;

    let conv = calibration_convergence();

    println!("{{");
    println!(
        "  \"description\": \"Observability cost and calibration convergence: (1) span-record cost per call with the recorder absent vs installed, and the end-to-end reactor-transport allreduce (P={P}, k={K}, N={DIM} f32, {ALGO:?}, fastest of {TRIALS} trials x 3 interleaved rounds, max across ranks within a trial) under no instrumentation, the span recorder, and telemetry collection (peer-wait/density sampling for cluster_report; acceptance bar <5%), plus the projected no-recorder overhead (span sites hit x measured disabled-call cost over the trial wall time); (2) the mis-pick scenario of tests/calibrated_auto.rs — a latency-bound planning hint over a bandwidth-bound virtual network — with the calibrating Auto session's per-iteration picks until convergence.\","
    );
    println!("  \"harness\": \"cargo run --release -p sparcml-bench --bin obs_overhead\",");
    println!("  \"span_call_ns\": {{");
    println!("    \"disabled\": {disabled_ns:.3},");
    println!("    \"enabled\": {enabled_ns:.3},");
    println!("    \"iterations\": {span_iters}");
    println!("  }},");
    println!("  \"reactor_p{P}_k{K}\": {{");
    println!("    \"no_recorder_wall_us\": {uninstalled_us:.0},");
    println!("    \"recorder_installed_wall_us\": {installed_us:.0},");
    println!(
        "    \"recorder_overhead_pct\": {:.2},",
        (installed_us - uninstalled_us) / uninstalled_us * 100.0
    );
    println!("    \"span_sites_hit_per_cluster_trial\": {spans_per_trial:.0},");
    println!("    \"projected_no_recorder_overhead_pct\": {projected_disabled_pct:.4},");
    println!("    \"telemetry_enabled_wall_us\": {telemetry_us:.0},");
    println!(
        "    \"telemetry_overhead_pct\": {:.2}",
        (telemetry_us - uninstalled_us) / uninstalled_us * 100.0
    );
    println!("  }},");
    println!("  \"calibration\": {{");
    println!(
        "    \"scenario\": \"P={P} N={CAL_DIM} k={CAL_K}: hint alpha=5e-3 beta=1e-12 (latency-bound), actual alpha=1e-7 beta=5e-8 (bandwidth-bound)\","
    );
    println!("    \"pinned_virtual_s\": {{");
    for (i, (algo, t)) in conv.pinned_s.iter().enumerate() {
        let comma = if i + 1 < conv.pinned_s.len() { "," } else { "" };
        println!("      \"{}\": {t:.6}{comma}", algo.name());
    }
    println!("    }},");
    println!("    \"preset_pick\": \"{}\",", conv.preset.name());
    println!("    \"empirical_best\": \"{}\",", conv.best.name());
    println!("    \"iterations\": [");
    for (i, (pick, dur)) in conv.trajectory.iter().enumerate() {
        let comma = if i + 1 < conv.trajectory.len() {
            ","
        } else {
            ""
        };
        println!("      {{\"iter\": {i}, \"pick\": \"{pick}\", \"virtual_s\": {dur:.6}}}{comma}");
    }
    println!("    ],");
    println!("    \"converged_pick\": \"{}\",", conv.converged.name());
    println!(
        "    \"converged_to_empirical_best\": {}",
        conv.converged == conv.best
    );
    println!("  }}");
    println!("}}");
}
