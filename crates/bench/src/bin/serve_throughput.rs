//! Aggregation-service throughput/latency benchmark.
//!
//! Spins up a serve daemon (1 shard) or shard group (2 shards) on
//! loopback and drives it with concurrent client threads, each running
//! the full `contribute → ACK` round trip over real sockets. Reports
//! sustained contributions/sec and the pooled p50/p99 ACK latency at the
//! BENCH_serve.json grid — clients ∈ {1, 4, 16}, k ∈ {1e2, 1e4}
//! nonzeros of an N = 2^20 f32 model, 1 vs 2 shards.
//!
//! ```console
//! cargo run --release -p sparcml-bench --bin serve_throughput
//! ```

use std::time::{Duration, Instant};

use sparcml_serve::{AggregationMode, ServeClient, ServeConfig, ShardGroup};
use sparcml_stream::random_sparse;

const DIM: usize = 1 << 20;
const ROUNDS: usize = 40;
const CLIENTS: [usize; 3] = [1, 4, 16];
const KS: [usize; 2] = [100, 10_000];
const SHARDS: [u16; 2] = [1, 2];

struct Measured {
    contribs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn bench_config(clients: usize, k: usize, shards: u16) -> Measured {
    let cfg = ServeConfig::default().with_model("grad", DIM, AggregationMode::Sum);
    let group = ShardGroup::start(cfg, shards).expect("start shard group");
    let addrs = group.addrs();

    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addrs = &addrs;
                scope.spawn(move || {
                    let name = format!("bench-client-{c}");
                    let mut session = ServeClient::connect(&name, addrs).expect("connect");
                    let grad = random_sparse::<f32>(DIM, k, 9000 + c as u64);
                    let mut lat = Vec::with_capacity(ROUNDS);
                    for round in 0..=ROUNDS {
                        let t0 = Instant::now();
                        session
                            .contribute(0, &grad, Duration::from_secs(60))
                            .expect("contribute");
                        if round > 0 {
                            // Round 0 is warmup (sockets + allocator ramp).
                            lat.push(t0.elapsed().as_secs_f64());
                        }
                    }
                    session.close();
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    group.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Measured {
        contribs_per_sec: latencies.len() as f64 / wall,
        p50_us: percentile(&latencies, 0.50) * 1e6,
        p99_us: percentile(&latencies, 0.99) * 1e6,
    }
}

fn main() {
    println!("{{");
    println!(
        "  \"description\": \"Aggregation-service throughput: concurrent loopback clients running the full contribute->ACK round trip against a serve daemon ({ROUNDS} timed rounds per client after warmup). Latencies pooled across clients; throughput is total ACKed contributions over wall time. N = {DIM} f32.\","
    );
    println!("  \"harness\": \"cargo run --release -p sparcml-bench --bin serve_throughput\",");
    println!("  \"contribute\": {{");
    for (si, &shards) in SHARDS.iter().enumerate() {
        println!("    \"shards={shards}\": {{");
        for (ki, &k) in KS.iter().enumerate() {
            println!("      \"k={k}\": {{");
            for (ci, &clients) in CLIENTS.iter().enumerate() {
                let m = bench_config(clients, k, shards);
                let comma = if ci + 1 < CLIENTS.len() { "," } else { "" };
                println!(
                    "        \"clients={clients}\": {{ \"contribs_per_sec\": {:.0}, \"p50_us\": {:.0}, \"p99_us\": {:.0} }}{comma}",
                    m.contribs_per_sec, m.p50_us, m.p99_us
                );
                eprintln!(
                    "shards={shards} k={k} clients={clients}: {:.0}/s p50={:.0}us p99={:.0}us",
                    m.contribs_per_sec, m.p50_us, m.p99_us
                );
            }
            let comma = if ki + 1 < KS.len() { "," } else { "" };
            println!("      }}{comma}");
        }
        let comma = if si + 1 < SHARDS.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  }}");
    println!("}}");
}
