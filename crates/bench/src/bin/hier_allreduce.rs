//! Flat vs hierarchical allreduce at P = 8 pinned to a 2×4 topology.
//!
//! Two complementary views, both printed as one JSON document
//! (→ BENCH_hier.json):
//!
//! * **measured** — wall times over loopback TCP (real sockets, ranks as
//!   threads in this process). Loopback has no intra/inter *bandwidth*
//!   gap, but its per-message socket cost is large, and the two-level
//!   schedule simply moves fewer (and smaller) frames through the stack:
//!   binomial trees on the node halves plus one two-leader exchange,
//!   instead of every rank exchanging its growing union in each of the
//!   3 flat rounds. Hierarchy wins both grid points here (~1.8× at
//!   k=1e2, ~2.5× at k=1e4 on the measured run).
//! * **modelled** — the §5.3 selector's analytic estimates under real
//!   multi-node cost splits. On slow inter links (GigE) hierarchy wins
//!   across the grid; on an Aries-class network at k=1e4 the
//!   bandwidth-optimal flat `SSAR_Split_allgather` stays ahead — the
//!   regime where the topology-aware selector correctly keeps flat.
//!
//! ```console
//! cargo run --release -p sparcml-bench --bin hier_allreduce
//! ```

use std::time::{Duration, Instant};

use sparcml_core::{
    estimate_hierarchical_time, estimate_time, select_algorithm, select_algorithm_with_topology,
    Algorithm, Communicator, Transport,
};
use sparcml_net::{
    run_tcp_loopback_cluster, CostModel, Topology, TopologyCostModel, TransportConfig,
};
use sparcml_stream::random_sparse;

const DIM: usize = 1 << 20;
const P: usize = 8;
const TRIALS: usize = 7;
const KS: [usize; 2] = [100, 10_000];

/// Median across trials of the slowest rank's wall time for one allreduce.
fn bench_config(hierarchical: bool, k: usize, topo: &Topology) -> f64 {
    let config = TransportConfig::default().with_recv_timeout(Duration::from_secs(60));
    let topo = topo.clone();
    let per_rank: Vec<Vec<f64>> =
        run_tcp_loopback_cluster(P, CostModel::loopback_tcp(), config, move |tp| {
            let mut comm = Communicator::new(tp.detach());
            let input = random_sparse::<f32>(DIM, k, 8800 + comm.rank() as u64);
            let mut times = Vec::with_capacity(TRIALS);
            for trial in 0..=TRIALS {
                let start = Instant::now();
                let builder = comm.allreduce(&input);
                let builder = if hierarchical {
                    builder
                        .algorithm(Algorithm::Hierarchical)
                        .topology(topo.clone())
                        .leader_algorithm(Algorithm::SsarRecDbl)
                } else {
                    builder.algorithm(Algorithm::SsarRecDbl)
                };
                let out = builder
                    .launch()
                    .and_then(|h| h.wait())
                    .expect("allreduce over loopback TCP");
                assert_eq!(out.dim(), DIM);
                if trial > 0 {
                    times.push(start.elapsed().as_secs_f64());
                }
            }
            *tp = comm.into_transport();
            times
        });
    let mut slowest: Vec<f64> = (0..TRIALS)
        .map(|t| per_rank.iter().map(|r| r[t]).fold(0.0, f64::max))
        .collect();
    slowest.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    slowest[TRIALS / 2]
}

fn main() {
    let topo = Topology::uniform(2, 4).expect("2x4 topology");
    println!("{{");
    println!(
        "  \"description\": \"Flat SSAR_Recursive_double vs the two-level hierarchical schedule at P={P} pinned to a 2x4 topology, N = 2^20 f32. 'measured' = median wall time over loopback TCP (max across ranks per trial, {TRIALS} trials): the hierarchy moves fewer and smaller frames through the socket stack (binomial node trees + one two-leader exchange, 2 vs 8 boundary-crossing messages) and wins both k points. 'modelled' = Sec 5.3 estimates under real multi-node link splits: hierarchy wins on slow inter links (GigE) and in the latency-bound Aries regime, while flat SSAR_Split_allgather stays ahead on Aries at k=1e4 — the bandwidth-bound regime the topology-aware selector correctly keeps flat.\","
    );
    println!("  \"harness\": \"cargo run --release -p sparcml-bench --bin hier_allreduce\",");
    println!("  \"measured_loopback_wall_us\": {{");
    for (ki, &k) in KS.iter().enumerate() {
        let flat = bench_config(false, k, &topo) * 1e6;
        let hier = bench_config(true, k, &topo) * 1e6;
        let comma = if ki + 1 < KS.len() { "," } else { "" };
        println!(
            "    \"k={k}\": {{ \"flat_ssar_rec_dbl\": {flat:.0}, \"hierarchical\": {hier:.0} }}{comma}"
        );
        eprintln!("measured k={k}: flat {flat:.0} us, hier {hier:.0} us");
    }
    println!("  }},");
    println!("  \"modelled_multinode_us\": {{");
    let clusters = [
        ("gige_cluster", TopologyCostModel::gige_cluster()),
        ("aries_cluster", TopologyCostModel::aries_cluster()),
    ];
    for (ci, (name, tcm)) in clusters.iter().enumerate() {
        println!("    \"{name}\": {{");
        for (ki, &k) in KS.iter().enumerate() {
            let flat_best = select_algorithm::<f32>(P, DIM, k, &tcm.inter);
            let t_flat = estimate_time::<f32>(flat_best, P, DIM, k, &tcm.inter) * 1e6;
            let t_hier = estimate_hierarchical_time::<f32>(&topo, DIM, k, tcm) * 1e6;
            let pick = select_algorithm_with_topology::<f32>(&topo, DIM, k, tcm);
            let comma = if ki + 1 < KS.len() { "," } else { "" };
            println!(
                "      \"k={k}\": {{ \"flat_best\": \"{}\", \"flat_us\": {t_flat:.1}, \"hierarchical_us\": {t_hier:.1}, \"selector_picks\": \"{}\" }}{comma}",
                flat_best.name(),
                pick.name()
            );
            eprintln!(
                "modelled {name} k={k}: flat({}) {t_flat:.1} us, hier {t_hier:.1} us -> {}",
                flat_best.name(),
                pick.name()
            );
        }
        let comma = if ci + 1 < clusters.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  }}");
    println!("}}");
}
