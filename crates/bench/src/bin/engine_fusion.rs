//! Engine fusion micro-benchmark: fused vs per-layer gradient exchange
//! over loopback TCP — the wall-clock evidence behind BENCH_engine.json.
//!
//! For each configuration (layers ∈ {8, 64}, k ∈ {1e2, 1e4}, P = 4,
//! 2^16-dimensional f32 layers) a step's per-layer Top-k-shaped gradients
//! are exchanged two ways on real sockets:
//!
//! * **per-layer** — one blocking allreduce per layer (the seed path);
//! * **engine-fused** — all layers submitted as one group to the
//!   progress engine, which fuses them into a single collective.
//!
//! Per-step wall time is noisy at this scale (a loopback cluster is
//! scheduler-bound), so each variant is measured over `REPS` independent
//! cluster spins, alternating variants so machine-load drift hits both
//! sides alike; the reported wall is the median across spins of the
//! per-spin median (itself the max-across-ranks per trial).
//!
//! Prints a JSON document with median wall times per step, the speedup,
//! and the transport message counts from the `CommStats` counters.
//!
//! ```console
//! cargo run --release -p sparcml-bench --bin engine_fusion
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use sparcml_core::{Algorithm, Communicator, Transport};
use sparcml_engine::{CommunicatorEngineExt, EngineConfig};
use sparcml_net::{run_tcp_loopback_cluster, CommStats, CostModel, TransportConfig};
use sparcml_stream::{random_sparse, SparseStream};

const P: usize = 4;
const LAYER_DIM: usize = 1 << 16;
const TRIALS: usize = 15;
/// Independent cluster spins per variant; the reported wall is the
/// median across spins.
const REPS: usize = 3;

struct Measured {
    wall_s: f64,
    msgs_sent: u64,
    collectives: u64,
}

fn grads(rank: usize, layers: usize, k: usize) -> Vec<SparseStream<f32>> {
    (0..layers)
        .map(|l| random_sparse::<f32>(LAYER_DIM, k, (7000 + rank * 100 + l) as u64))
        .collect()
}

/// Median across trials of the slowest rank's step time, plus one rank's
/// per-step traffic counters.
fn collect(per_rank: Vec<Vec<(f64, CommStats)>>) -> Measured {
    let mut slowest: Vec<f64> = (0..TRIALS)
        .map(|t| per_rank.iter().map(|r| r[t].0).fold(0.0, f64::max))
        .collect();
    slowest.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    // Traffic is deterministic per configuration; report rank 1 (a
    // non-root rank, representative of the engine's control plane cost).
    let traffic = &per_rank[1.min(per_rank.len() - 1)][0].1;
    Measured {
        wall_s: slowest[TRIALS / 2],
        msgs_sent: traffic.msgs_sent,
        collectives: traffic.collectives,
    }
}

fn bench_per_layer(layers: usize, k: usize) -> Measured {
    let config = TransportConfig::default().with_recv_timeout(Duration::from_secs(60));
    let per_rank = run_tcp_loopback_cluster(P, CostModel::loopback_tcp(), config, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let inputs = grads(comm.rank(), layers, k);
        let mut out = Vec::with_capacity(TRIALS);
        for trial in 0..=TRIALS {
            let baseline = comm.stats().snapshot();
            let start = Instant::now();
            for g in &inputs {
                comm.allreduce(g)
                    .algorithm(Algorithm::SsarRecDbl)
                    .launch()
                    .and_then(|h| h.wait())
                    .expect("per-layer allreduce");
            }
            if trial > 0 {
                out.push((start.elapsed().as_secs_f64(), comm.stats().since(&baseline)));
            }
        }
        *tp = comm.into_transport();
        out
    });
    collect(per_rank)
}

fn bench_engine(layers: usize, k: usize) -> Measured {
    let config = TransportConfig::default().with_recv_timeout(Duration::from_secs(60));
    let per_rank = run_tcp_loopback_cluster(P, CostModel::loopback_tcp(), config, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let mut engine = comm.engine::<f32>(EngineConfig {
            algorithm: Algorithm::SsarRecDbl,
            ..EngineConfig::default()
        });
        let inputs: Vec<Arc<SparseStream<f32>>> = grads(engine.rank(), layers, k)
            .into_iter()
            .map(Arc::new)
            .collect();
        let mut out = Vec::with_capacity(TRIALS);
        for trial in 0..=TRIALS {
            let comm_before = engine.stats().comm;
            let start = Instant::now();
            let tickets = engine.submit_allreduce_group_shared(&inputs);
            for t in tickets {
                t.wait().expect("engine allreduce");
            }
            if trial > 0 {
                out.push((
                    start.elapsed().as_secs_f64(),
                    engine.stats().comm.since(&comm_before),
                ));
            }
        }
        engine.finish_into(&mut comm).expect("engine hands back");
        *tp = comm.into_transport();
        out
    });
    collect(per_rank)
}

/// The repetition with the median wall time (traffic counters are
/// deterministic, so any repetition's counters are representative).
fn median_rep(mut reps: Vec<Measured>) -> Measured {
    reps.sort_by(|a, b| a.wall_s.partial_cmp(&b.wall_s).expect("finite times"));
    reps.swap_remove(reps.len() / 2)
}

fn main() {
    println!("{{");
    println!(
        "  \"description\": \"Fused (progress engine) vs per-layer allreduce of per-layer sparse gradients over loopback TCP at P={P}: median wall time per step (max across ranks per trial, {TRIALS} trials, median of {REPS} cluster spins) and per-step transport counters of a non-root rank. Layers are {LAYER_DIM}-dim f32 with k non-zeros each.\","
    );
    println!("  \"harness\": \"cargo run --release -p sparcml-bench --bin engine_fusion\",");
    println!("  \"configs\": {{");
    let layer_counts = [8usize, 64];
    let ks = [100usize, 10_000];
    for (li, &layers) in layer_counts.iter().enumerate() {
        println!("    \"layers={layers}\": {{");
        for (ki, &k) in ks.iter().enumerate() {
            let mut seq_reps = Vec::with_capacity(REPS);
            let mut eng_reps = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                seq_reps.push(bench_per_layer(layers, k));
                eng_reps.push(bench_engine(layers, k));
            }
            let seq = median_rep(seq_reps);
            let eng = median_rep(eng_reps);
            let speedup = seq.wall_s / eng.wall_s;
            println!("      \"k={k}\": {{");
            println!("        \"per_layer_wall_us\": {:.0},", seq.wall_s * 1e6);
            println!("        \"engine_fused_wall_us\": {:.0},", eng.wall_s * 1e6);
            println!("        \"speedup\": {speedup:.2},");
            println!("        \"per_layer_msgs\": {},", seq.msgs_sent);
            println!("        \"engine_msgs\": {},", eng.msgs_sent);
            println!("        \"per_layer_collectives\": {},", seq.collectives);
            println!("        \"engine_collectives\": {}", eng.collectives);
            let comma = if ki + 1 < ks.len() { "," } else { "" };
            println!("      }}{comma}");
            eprintln!(
                "layers={layers} k={k}: per-layer {:.0}us / engine {:.0}us ({speedup:.2}x), msgs {} -> {}",
                seq.wall_s * 1e6,
                eng.wall_s * 1e6,
                seq.msgs_sent,
                eng.msgs_sent
            );
        }
        let comma = if li + 1 < layer_counts.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  }}");
    println!("}}");
}
