//! Figure 4a: training accuracy of sparsified (and quantized) SGD vs
//! full dense SGD on the CIFAR-10-class task.
//!
//! Paper setup: ResNet-110 on CIFAR-10, Top-k with k = 8 and 16 out of
//! every bucket of 512 (~1.6%/3% density), 4-bit stochastic quantization,
//! 8 nodes. Expected shape: all three curves overlap; the k=8 variant may
//! even edge out the 32-bit baseline slightly (the paper reports +1%).
//! Our stand-in: an MLP on a synthetic 10-class image task (see
//! DESIGN.md), same k/bucket ratios and quantization.

use sparcml_bench::{header, print_row, BenchArgs};
use sparcml_net::CostModel;
use sparcml_opt::data::generate_dense_images_noisy;
use sparcml_opt::{train_mlp_distributed, Compression, LrSchedule, NnTrainConfig, TopKConfig};
use sparcml_quant::QsgdConfig;

fn main() {
    let args = BenchArgs::parse();
    header(
        "Figure 4a",
        "Training accuracy per epoch: dense 32-bit SGD vs Top-k (8/512 and 16/512)\n\
         with 4-bit QSGD, 8 nodes. (MLP stand-in for ResNet-110/CIFAR-10.)",
    );
    let dim = args.dim(3072).min(256);
    let ds = generate_dense_images_noisy(dim, 10, 1200, 1.4, 11);
    let epochs = 12;
    let p = 8;
    let base = NnTrainConfig {
        epochs,
        lr: LrSchedule::Const(0.05),
        batch_per_node: 8,
        ..Default::default()
    };
    let variants: Vec<(&str, NnTrainConfig)> = vec![
        ("dense 32-bit", base.clone()),
        (
            "topk 16/512 + Q4",
            NnTrainConfig {
                compression: Compression::TopKQuant(
                    TopKConfig {
                        k_per_bucket: 16,
                        bucket_size: 512,
                    },
                    QsgdConfig::with_bits(4),
                ),
                ..base.clone()
            },
        ),
        (
            "topk 8/512 + Q4",
            NnTrainConfig {
                compression: Compression::TopKQuant(
                    TopKConfig {
                        k_per_bucket: 8,
                        bucket_size: 512,
                    },
                    QsgdConfig::with_bits(4),
                ),
                ..base.clone()
            },
        ),
    ];

    let mut results = Vec::new();
    for (name, cfg) in &variants {
        let (_, stats) = train_mlp_distributed(&ds, &[dim, 64, 10], p, CostModel::aries(), cfg);
        results.push((name.to_string(), stats));
    }

    let widths = vec![8usize, 18, 18, 18];
    let mut head = vec!["epoch".to_string()];
    head.extend(results.iter().map(|(n, _)| n.clone()));
    print_row(&head, &widths);
    for e in 0..epochs {
        let mut row = vec![format!("{e}")];
        for (_, stats) in &results {
            row.push(format!("{:.1}%", stats[e].accuracy * 100.0));
        }
        print_row(&row, &widths);
    }
    println!();
    let dense_final = results[0].1.last().unwrap().accuracy;
    for (name, stats) in &results[1..] {
        let fin = stats.last().unwrap().accuracy;
        println!(
            "{name}: final accuracy {:.1}% vs dense {:.1}% (delta {:+.1} pts; paper: within ~1%)",
            fin * 100.0,
            dense_final * 100.0,
            (fin - dense_final) * 100.0
        );
    }
}
