//! Figure 6: production ASR workload.
//!
//! (a) Cross-entropy loss vs training time for the BMUF 16-GPU
//! full-precision baseline against SparCML Top-k (4/512) at 32, 64 and
//! 128 GPUs. (b) throughput scalability vs GPU count.
//!
//! The paper's result: the 16-GPU BMUF baseline takes ~14 days for six
//! dataset passes; SparCML at 128 GPUs finishes in <1.8 days (~10x).
//! Throughputs here come from the layer-wise step-time simulation fed
//! with *measured* collective times (ASR-LSTM preset, V100 nodes, IB
//! network); the loss curve is the shared parametric CE curve — the
//! paper reports per-sample convergence parity, so systems differ only
//! in samples/second.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::Algorithm;
use sparcml_net::CostModel;
use sparcml_trainsim::{
    throughput, AnalyticEstimator, Exchange, GpuSpec, LossCurve, ModelSpec, SyncStrategy,
};

fn main() {
    let _args = BenchArgs::parse();
    header(
        "Figure 6a",
        "ASR LSTM: CE loss vs wall time — BMUF baseline (16 GPUs) vs SparCML Top-k\n\
         (4/512) at 32/64/128 GPUs. 30k hours of speech ~ 36M utterances, 6 passes.",
    );
    let model = ModelSpec::asr_lstm();
    // Real Top-k gradients overlap strongly across nodes (attention-layer
    // mass, cf. Fig. 1); 0.1 interpolates 90% of the way from the uniform
    // worst case towards full overlap.
    let est = AnalyticEstimator::with_support_overlap(CostModel::infiniband(), 0.1);
    let gpu = GpuSpec::v100();
    // Strong scaling as in the paper: "we keep a fixed global batch size
    // of 512 samples".
    let global_batch = 512usize;

    // Baseline: 16 GPUs, BMUF (communicates once per 8 local steps).
    let bmuf = SyncStrategy::Bmuf { block_steps: 8 };
    let tp_bmuf = throughput(&model, 16, global_batch / 16, &gpu, &bmuf, &est);

    // SparCML: Top-k 4/512 per-layer overlapped exchange.
    let sparse = SyncStrategy::PerLayer(Exchange::TopK {
        k_per_bucket: 4,
        algorithm: Algorithm::SsarRecDbl,
        quant: None,
    });
    let gpus = [32usize, 64, 128];
    let tps: Vec<f64> = gpus
        .iter()
        .map(|&g| throughput(&model, g, global_batch / g, &gpu, &sparse, &est))
        .collect();

    let total_samples = 36.0e6 * 6.0; // six passes
    let curve = LossCurve::asr_like(total_samples);
    let t_bmuf_done = total_samples / tp_bmuf;

    let widths = vec![12usize, 14, 16, 16];
    print_row(
        ["system", "samples/s", "6-pass time", "speedup vs BMUF"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    print_row(
        &[
            "BMUF-16".into(),
            format!("{tp_bmuf:.0}"),
            fmt_time(t_bmuf_done),
            "1.0x".into(),
        ],
        &widths,
    );
    for (g, tp) in gpus.iter().zip(&tps) {
        let t_done = total_samples / tp;
        print_row(
            &[
                format!("SparCML-{g}"),
                format!("{tp:.0}"),
                fmt_time(t_done),
                format!("{:.1}x", t_bmuf_done / t_done),
            ],
            &widths,
        );
    }

    println!();
    println!("loss-vs-time series (CE loss at fractions of the BMUF wall-clock):");
    let widths = vec![12usize, 10, 12, 12, 12];
    print_row(
        [
            "t/bmuf_total",
            "BMUF-16",
            "SparCML-32",
            "SparCML-64",
            "SparCML-128",
        ]
        .map(String::from)
        .as_ref(),
        &widths,
    );
    for frac in [0.05f64, 0.1, 0.2, 0.4, 0.7, 1.0] {
        let t = t_bmuf_done * frac;
        let mut row = vec![format!("{frac:.2}")];
        row.push(format!("{:.3}", curve.at((tp_bmuf * t).min(total_samples))));
        for tp in &tps {
            row.push(format!("{:.3}", curve.at((tp * t).min(total_samples))));
        }
        print_row(&row, &widths);
    }

    header(
        "Figure 6b",
        "Scalability: SparCML throughput vs GPU count (ideal = linear).",
    );
    let widths = vec![8usize, 14, 14, 10];
    print_row(
        ["GPUs", "samples/s", "vs 32 GPUs", "ideal"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    for (g, tp) in gpus.iter().zip(&tps) {
        print_row(
            &[
                g.to_string(),
                format!("{tp:.0}"),
                format!("{:.2}x", tp / tps[0]),
                format!("{:.2}x", *g as f64 / gpus[0] as f64),
            ],
            &widths,
        );
    }
    println!();
    println!("(paper: 14 days -> <1.8 days at 128 GPUs, i.e. ~10x vs the BMUF-16 baseline)");
}
