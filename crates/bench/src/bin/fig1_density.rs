//! Figure 1: density of the reduced Top-k gradient versus node count and
//! per-node density.
//!
//! The paper plots, for ResNet20/CIFAR-10 at epoch 5, how dense the
//! *summed* gradient becomes when P nodes each contribute the top d% of
//! their local gradient. We reproduce the measurement with an MLP trained
//! briefly on a synthetic CIFAR-like task: each "node" computes a gradient
//! on its own mini-batch, applies bucket-wise Top-k at the target density,
//! and we measure `|∪ supports| / N`. The expected shape: the reduced
//! density grows roughly as `1 − (1 − d)^P`, saturating towards fully
//! dense at high node counts — the motivation for DSAR.

use sparcml_bench::{header, print_row, BenchArgs};
use sparcml_opt::data::generate_dense_images_noisy;
use sparcml_opt::nn::Mlp;
use sparcml_opt::topk_bucketwise;
use sparcml_opt::TopKConfig;

fn main() {
    let args = BenchArgs::parse();
    header(
        "Figure 1",
        "Density (%) of the reduced Top-k gradient vs node count P and per-node density d.\n\
         Model: MLP on synthetic CIFAR-like data, gradients taken after a short warmup\n\
         (the paper uses ResNet20/CIFAR-10 at epoch 5; shape is density-structure driven).",
    );

    let dim = args.dim(3072);
    let classes = 10;
    let ds = generate_dense_images_noisy(dim, classes, 512, 0.7, 42);
    let mut model = Mlp::new(&[dim, 128, classes], 7);

    // Short warmup so gradients have realistic (non-random-init) structure.
    for step in 0..10 {
        let lo = (step * 32) % (ds.samples.len() - 32);
        let xs: Vec<&[f32]> = (lo..lo + 32).map(|i| ds.samples[i].as_slice()).collect();
        let ys: Vec<u32> = (lo..lo + 32).map(|i| ds.labels[i]).collect();
        let bg = model.batch_gradient(&xs, &ys);
        let mut p = model.params();
        for (pi, gi) in p.iter_mut().zip(&bg.grad) {
            *pi -= 0.05 * gi / 32.0;
        }
        model.set_params(&p);
    }
    let n = model.param_count();

    // Per-node gradients: distinct mini-batches.
    let max_p = 256usize;
    let node_grad = |node: usize| -> Vec<f32> {
        let lo = (node * 17) % (ds.samples.len() - 16);
        let xs: Vec<&[f32]> = (lo..lo + 16).map(|i| ds.samples[i].as_slice()).collect();
        let ys: Vec<u32> = (lo..lo + 16).map(|i| ds.labels[i]).collect();
        model.batch_gradient(&xs, &ys).grad
    };
    let grads: Vec<Vec<f32>> = (0..max_p).map(node_grad).collect();

    let densities = [0.001f64, 0.005, 0.01, 0.05, 0.10, 0.25];
    let node_counts = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let widths = vec![8usize; densities.len() + 1];

    let mut head = vec!["P \\ d".to_string()];
    head.extend(densities.iter().map(|d| format!("{:.1}%", d * 100.0)));
    print_row(&head, &widths);

    for &p in &node_counts {
        let mut row = vec![format!("{p}")];
        for &d in &densities {
            let k = ((512.0 * d) as usize).max(1);
            let cfg = TopKConfig {
                k_per_bucket: k,
                bucket_size: 512,
            };
            let mut support = vec![false; n];
            for g in grads.iter().take(p) {
                let s = topk_bucketwise(g, &cfg);
                for (i, _) in s.iter_nonzero() {
                    support[i as usize] = true;
                }
            }
            let union = support.iter().filter(|&&b| b).count();
            row.push(format!("{:.2}%", union as f64 / n as f64 * 100.0));
        }
        print_row(&row, &widths);
    }
    println!();
    println!(
        "analytic (uniform) expectation 1-(1-d)^P for comparison, d = 1.0%: {}",
        node_counts
            .iter()
            .map(|&p| format!("P={p}: {:.2}%", (1.0 - 0.99f64.powi(p as i32)) * 100.0))
            .collect::<Vec<_>>()
            .join("  ")
    );
}
