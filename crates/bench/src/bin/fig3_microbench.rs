//! Figure 3: micro-benchmarks of the sparse allreduce algorithms.
//!
//! Left plot: reduction time versus node count on a Piz-Daint-class
//! network (paper: N = 16M, d = 0.781%). Right plot: reduction time
//! versus density on a GigE-class network at P = 8 (paper: N = 16M).
//! Times are virtual α–β-model completion times of the *actually
//! executed* collectives on uniform random supports ("k indices out of N
//! are selected uniformly at random at each node", §8.1).
//!
//! Expected shape (paper): SSAR_Recursive_double wins at small data /
//! low P; SSAR_Split_allgather dominates DSAR while the result stays
//! sparse; the dense ring is competitive at low P on fast networks but
//! flattens out; DSAR improvement is bounded by a constant at high fill.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::{max_communicator_time, Algorithm};
use sparcml_net::CostModel;
use sparcml_stream::random_sparse;

fn reduction_time(algo: Algorithm, p: usize, n: usize, k: usize, cost: CostModel) -> f64 {
    max_communicator_time(p, cost, move |comm| {
        let input = random_sparse::<f32>(n, k, 1000 + comm.rank() as u64);
        comm.allreduce(&input)
            .algorithm(algo)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
    })
}

const ALGOS: [Algorithm; 5] = [
    Algorithm::SsarRecDbl,
    Algorithm::SsarSplitAllgather,
    Algorithm::DsarSplitAllgather,
    Algorithm::DenseRing,
    Algorithm::SparseRing,
];

fn main() {
    let args = BenchArgs::parse();
    let n = args.dim(16 * 1024 * 1024);

    header(
        "Figure 3 (left)",
        &format!(
            "Reduction time vs node count, Aries-class network (Piz Daint), N = {n}, d = 0.781%.\n\
             Dense baseline: MPI-style allreduce (Rabenseifner) + ring variants."
        ),
    );
    let k = ((n as f64) * 0.00781) as usize;
    let widths = vec![22usize, 10, 10, 10, 10, 10, 10];
    let mut head = vec!["algorithm \\ P".to_string()];
    let node_counts = [2usize, 4, 8, 16, 32];
    head.extend(node_counts.iter().map(|p| p.to_string()));
    print_row(&head, &widths);
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for algo in ALGOS.iter().chain([Algorithm::DenseRabenseifner].iter()) {
        let mut times = Vec::new();
        for &p in &node_counts {
            times.push(reduction_time(*algo, p, n, k, CostModel::aries()));
        }
        rows.push((algo.name().to_string(), times));
    }
    for (name, times) in &rows {
        let mut row = vec![name.clone()];
        row.extend(times.iter().map(|t| fmt_time(*t)));
        print_row(&row, &widths);
    }

    header(
        "Figure 3 (right)",
        &format!("Reduction time vs density, GigE-class network (Greina), N = {n}, P = 8."),
    );
    let densities = [0.0001f64, 0.001, 0.005, 0.01, 0.05, 0.10];
    let mut head = vec!["algorithm \\ d".to_string()];
    head.extend(densities.iter().map(|d| format!("{:.2}%", d * 100.0)));
    print_row(&head, &widths);
    for algo in ALGOS.iter().chain([Algorithm::DenseRabenseifner].iter()) {
        let mut row = vec![algo.name().to_string()];
        for &d in &densities {
            let k = ((n as f64) * d).max(1.0) as usize;
            row.push(fmt_time(reduction_time(*algo, 8, n, k, CostModel::gige())));
        }
        print_row(&row, &widths);
    }
    println!();
    println!(
        "(--scale {} of paper dims; run with --full for N = 16M)",
        args.scale
    );
}
