//! §8.3 end-to-end training speedups on academic tasks.
//!
//! Paper (8 nodes, Piz Daint): ATIS 5.99x, CIFAR-10/ResNet-110 1.12x,
//! Hansards 1.5x — "the variance in these speedup numbers is explained by
//! the varying ratios of communication and computation of the models".
//! We reproduce the mechanism: per-model layer profiles with their
//! compute:communication ratios, dense baseline vs Top-k exchange.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::Algorithm;
use sparcml_net::CostModel;
use sparcml_trainsim::{step_time, AnalyticEstimator, Exchange, GpuSpec, ModelSpec, SyncStrategy};

fn main() {
    let _args = BenchArgs::parse();
    header(
        "§8.3 speedups",
        "End-to-end step-time speedup of Top-k SparCML vs dense baseline, 8 nodes,\n\
         P100 GPUs, Aries network. Paper: ATIS 5.99x, CIFAR-10 1.12x, Hansards 1.5x.",
    );
    // Top-k supports of real models overlap strongly across nodes; 0.2
    // interpolates most of the way from the uniform worst case (Fig. 1).
    let est = AnalyticEstimator::with_support_overlap(CostModel::aries(), 0.2);
    let gpu = GpuSpec::p100();
    let p = 8;

    // (model, per-node batch, k/512, paper speedup)
    let cases: Vec<(ModelSpec, usize, usize, f64)> = vec![
        (ModelSpec::atis_lstm(), 70, 2, 5.99),
        (ModelSpec::resnet110_cifar(), 32, 8, 1.12),
        (ModelSpec::hansards_lstm(), 32, 4, 1.5),
    ];

    let widths = vec![14usize, 13, 13, 13, 11, 10];
    print_row(
        [
            "model",
            "dense step",
            "sparse step",
            "comm share",
            "speedup",
            "paper",
        ]
        .map(String::from)
        .as_ref(),
        &widths,
    );
    for (model, batch, k, paper) in cases {
        let dense = step_time(
            &model,
            p,
            batch,
            &gpu,
            &SyncStrategy::PerLayer(Exchange::dense()),
            &est,
        );
        let sparse = step_time(
            &model,
            p,
            batch,
            &gpu,
            &SyncStrategy::PerLayer(Exchange::TopK {
                k_per_bucket: k,
                algorithm: Algorithm::SsarRecDbl,
                quant: None,
            }),
            &est,
        );
        print_row(
            &[
                model.name.clone(),
                fmt_time(dense.total),
                fmt_time(sparse.total),
                format!("{:.0}%", dense.exposed_comm / dense.total * 100.0),
                format!("{:.2}x", dense.total / sparse.total),
                format!("{paper:.2}x"),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "shape check: the LSTM (comm-dominated) shows a large speedup, the CIFAR CNN\n\
         (compute-dominated) a small one, Hansards in between — matching the paper's\n\
         explanation of the variance."
    );
}
