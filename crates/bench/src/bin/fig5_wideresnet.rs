//! Figure 5: top-5 training and validation error for the 4x wide ResNet,
//! 32-bit baseline vs Top-k Quantized SGD (k = 1/512, i.e. 0.2% density).
//!
//! Expected shape: the two training curves nearly coincide, with Top-k
//! slightly *faster* to fall early and a small gap (<0.5% top-5) at the
//! end — exactly the paper's Fig. 5 description. Stand-in: a wide MLP on
//! a synthetic 100-class task with a held-out validation split.

use sparcml_bench::{header, print_row, BenchArgs};
use sparcml_net::CostModel;
use sparcml_opt::data::generate_dense_images_noisy;
use sparcml_opt::nn::{in_top_k, Mlp};
use sparcml_opt::{train_mlp_distributed, Compression, LrSchedule, NnTrainConfig, TopKConfig};
use sparcml_quant::QsgdConfig;

fn top5_error(model: &Mlp, xs: &[Vec<f32>], ys: &[u32]) -> f64 {
    let mut wrong = 0usize;
    for (x, &y) in xs.iter().zip(ys) {
        let logits = model.forward(x);
        if !in_top_k(&logits, y, 5) {
            wrong += 1;
        }
    }
    wrong as f64 / xs.len() as f64
}

fn main() {
    let args = BenchArgs::parse();
    header(
        "Figure 5",
        "Top-5 train/validation error: 32-bit baseline vs Top-k Quantized SGD\n\
         (k = 1/512 = 0.2% density + 4-bit QSGD). Wide-MLP stand-in for 4xResNet-18.",
    );
    let dim = args.dim(4096).min(256);
    let classes = 100;
    // One generation, split into train/valid so both share class means.
    let all = generate_dense_images_noisy(dim, classes, 2000, 1.2, 31);
    let split = 1600;
    let train = sparcml_opt::data::DenseDataset {
        dim: all.dim,
        classes: all.classes,
        samples: all.samples[..split].to_vec(),
        labels: all.labels[..split].to_vec(),
    };
    let valid = sparcml_opt::data::DenseDataset {
        dim: all.dim,
        classes: all.classes,
        samples: all.samples[split..].to_vec(),
        labels: all.labels[split..].to_vec(),
    };
    let epochs = 10;
    let p = 8;
    // "Wide": a large hidden layer, so most params sit in two big dense
    // layers — matching the wide-ResNet parameter profile.
    let dims = [dim, 512, classes];
    let base = NnTrainConfig {
        epochs,
        lr: LrSchedule::StepDecay {
            base: 0.3,
            factor: 0.1,
            every: 7 * (1600 / (8 * 8)),
        },
        batch_per_node: 8,
        ..Default::default()
    };
    let sparse = NnTrainConfig {
        compression: Compression::TopKQuant(
            TopKConfig {
                k_per_bucket: 1,
                bucket_size: 512,
            },
            QsgdConfig::with_bits(4),
        ),
        ..base.clone()
    };

    let (dense_model, dense_stats) =
        train_mlp_distributed(&train, &dims, p, CostModel::aries(), &base);
    let (sparse_model, sparse_stats) =
        train_mlp_distributed(&train, &dims, p, CostModel::aries(), &sparse);

    let widths = vec![8usize, 16, 16];
    println!("top-5 TRAIN error per epoch:");
    print_row(
        ["epoch", "baseline", "topk+Q4"].map(String::from).as_ref(),
        &widths,
    );
    for e in 0..epochs {
        print_row(
            &[
                format!("{e}"),
                format!("{:.1}%", (1.0 - dense_stats[e].top5_accuracy) * 100.0),
                format!("{:.1}%", (1.0 - sparse_stats[e].top5_accuracy) * 100.0),
            ],
            &widths,
        );
    }
    println!();
    let dense_val = top5_error(&dense_model, &valid.samples, &valid.labels);
    let sparse_val = top5_error(&sparse_model, &valid.samples, &valid.labels);
    println!(
        "top-5 VALIDATION error: baseline {:.1}% vs topk+Q4 {:.1}% (delta {:+.1} pts;\n\
              paper: <0.5% top-5 gap on 4xResNet-18)",
        dense_val * 100.0,
        sparse_val * 100.0,
        (sparse_val - dense_val) * 100.0,
    );
}
