//! Loopback TCP allreduce micro-benchmark: real sockets, wall-clock time.
//!
//! Measures the dense baseline against the sparse (SSAR) schedules over
//! the `TcpTransport` at the BENCH_tcp.json grid — k ∈ {1e3, 1e5},
//! P ∈ {4, 8}, N = 2^20 f32 — and prints a JSON document with the
//! per-configuration median wall times. Ranks are OS threads in this
//! process, but every message crosses the kernel TCP stack, so this is
//! the first perf trajectory for the collectives on a real wire.
//!
//! ```console
//! cargo run --release -p sparcml-bench --bin tcp_loopback
//! ```

use std::time::{Duration, Instant};

use sparcml_core::{Algorithm, Communicator, Transport};
use sparcml_net::{run_tcp_loopback_cluster, CostModel, TransportConfig};
use sparcml_stream::random_sparse;

const DIM: usize = 1 << 20;
const TRIALS: usize = 7;
const ALGOS: [Algorithm; 4] = [
    Algorithm::DenseRecDbl,
    Algorithm::DenseRing,
    Algorithm::SsarRecDbl,
    Algorithm::SsarSplitAllgather,
];

/// Median wall time of one allreduce across ranks (max over ranks per
/// trial — a collective is only done when its slowest rank is).
fn bench_config(algo: Algorithm, p: usize, k: usize) -> f64 {
    let config = TransportConfig::default().with_recv_timeout(Duration::from_secs(60));
    let per_rank: Vec<Vec<f64>> =
        run_tcp_loopback_cluster(p, CostModel::loopback_tcp(), config, |tp| {
            let mut comm = Communicator::new(tp.detach());
            let input = random_sparse::<f32>(DIM, k, 4200 + comm.rank() as u64);
            let mut times = Vec::with_capacity(TRIALS);
            for trial in 0..=TRIALS {
                let start = Instant::now();
                let out = comm
                    .allreduce(&input)
                    .algorithm(algo)
                    .launch()
                    .and_then(|h| h.wait())
                    .expect("allreduce over loopback TCP");
                assert_eq!(out.dim(), DIM);
                if trial > 0 {
                    // Trial 0 is warmup (connection + allocator ramp).
                    times.push(start.elapsed().as_secs_f64());
                }
            }
            *tp = comm.into_transport();
            times
        });
    let mut slowest: Vec<f64> = (0..TRIALS)
        .map(|t| per_rank.iter().map(|r| r[t]).fold(0.0, f64::max))
        .collect();
    slowest.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    slowest[TRIALS / 2]
}

fn main() {
    println!("{{");
    println!(
        "  \"description\": \"Loopback TCP allreduce wall times (median of {TRIALS} trials, max across ranks per trial): dense baselines vs the sparse SSAR schedules on TcpTransport. Ranks are threads in one process; every message crosses the kernel TCP stack. N = {DIM} f32.\","
    );
    println!("  \"harness\": \"cargo run --release -p sparcml-bench --bin tcp_loopback\",");
    println!("  \"allreduce_wall_us\": {{");
    let ps = [4usize, 8];
    let ks = [1_000usize, 100_000];
    for (pi, &p) in ps.iter().enumerate() {
        println!("    \"P={p}\": {{");
        for (ki, &k) in ks.iter().enumerate() {
            println!("      \"k={k}\": {{");
            for (ai, algo) in ALGOS.iter().enumerate() {
                let us = bench_config(*algo, p, k) * 1e6;
                let comma = if ai + 1 < ALGOS.len() { "," } else { "" };
                println!("        \"{}\": {:.0}{comma}", algo.name(), us);
                eprintln!("P={p} k={k} {}: {:.0} us", algo.name(), us);
            }
            let comma = if ki + 1 < ks.len() { "," } else { "" };
            println!("      }}{comma}");
        }
        let comma = if pi + 1 < ps.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  }}");
    println!("}}");
}
