//! Figure 7 (Appendix B): expected size of the reduced result under a
//! uniform non-zero index distribution, N = 512.
//!
//! Prints the multiplicative density growth E\[K\]/k for a grid of node
//! counts P and per-node non-zero counts k — both the closed form
//! `N·(1−(1−k/N)^P)` and a Monte-Carlo estimate from actual sampled
//! supports, which must agree.

use sparcml_bench::{header, print_row};
use sparcml_core::theory::{
    density_growth, expected_union_size, monte_carlo_union_size, union_bound,
};

fn main() {
    header(
        "Figure 7",
        "Expected reduced size E[K] under uniform supports, N = 512.\n\
         Cells: closed form (Monte-Carlo estimate over 200 trials).",
    );
    let n = 512usize;
    let ks = [4usize, 8, 16, 32, 64];
    let ps = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];
    let widths = vec![10usize; ks.len() + 1];
    let mut head = vec!["P \\ k".to_string()];
    head.extend(ks.iter().map(|k| k.to_string()));
    print_row(&head, &widths);
    for &p in &ps {
        let mut row = vec![p.to_string()];
        for &k in &ks {
            let exact = expected_union_size(n, p, k);
            let mc = monte_carlo_union_size(n, p, k, 200, 99);
            row.push(format!("{exact:.0}({mc:.0})"));
        }
        print_row(&row, &widths);
    }

    println!();
    println!("density growth E[K]/k (the multiplicative fill-in plotted in Fig. 7):");
    let mut head = vec!["P \\ k".to_string()];
    head.extend(ks.iter().map(|k| k.to_string()));
    print_row(&head, &widths);
    for &p in &ps {
        let mut row = vec![p.to_string()];
        for &k in &ks {
            row.push(format!("{:.1}x", density_growth(n, p, k)));
        }
        print_row(&row, &widths);
    }
    println!();
    println!(
        "union bound check (K <= min(N, P*k)): e.g. P=512,k=64 -> bound {}",
        union_bound(n, 512, 64)
    );
}
