//! Table 1: the dataset inventory.
//!
//! Generates the synthetic stand-ins at (scaled) paper dimensions and
//! prints their statistics next to the paper's numbers.

use sparcml_bench::{header, print_row, BenchArgs};
use sparcml_opt::data::{
    generate_dense_images, generate_sequences, generate_sparse, SparseGenConfig,
};

fn main() {
    let args = BenchArgs::parse();
    header(
        "Table 1",
        "Real-world application datasets (paper) and our synthetic stand-ins (generated).",
    );
    let widths = vec![14usize, 10, 14, 16, 22];
    print_row(
        [
            "dataset",
            "classes",
            "samples",
            "dimension",
            "generated (stats)",
        ]
        .map(String::from)
        .as_ref(),
        &widths,
    );

    // URL: 2 classes, 2 396 130 samples, 3 231 961 features.
    let url_samples = args.dim(2_396_130).min(4000);
    let url = generate_sparse(&SparseGenConfig {
        samples: url_samples,
        ..SparseGenConfig::url_like(url_samples)
    });
    print_row(
        &[
            "URL".into(),
            "2".into(),
            "2 396 130".into(),
            "3 231 961".into(),
            format!(
                "{} x {} (avg nnz {:.0})",
                url.samples.len(),
                url.dim,
                url.avg_nnz()
            ),
        ],
        &widths,
    );

    // Webspam: 2 classes, 350 000 samples, 16 609 143 features.
    let web_samples = args.dim(350_000).min(1500);
    let web = generate_sparse(&SparseGenConfig {
        samples: web_samples,
        nnz_per_sample: 800, // scaled from 3730 to keep generation quick
        ..SparseGenConfig::webspam_like(web_samples)
    });
    print_row(
        &[
            "Webspam".into(),
            "2".into(),
            "350 000".into(),
            "16 609 143".into(),
            format!(
                "{} x {} (avg nnz {:.0})",
                web.samples.len(),
                web.dim,
                web.avg_nnz()
            ),
        ],
        &widths,
    );

    // CIFAR-10: 10 classes, 60 000 samples, 32x32x3.
    let cifar = generate_dense_images(3072, 10, args.dim(60_000).min(2000), 5);
    print_row(
        &[
            "CIFAR-10".into(),
            "10".into(),
            "60 000".into(),
            "32x32x3".into(),
            format!("{} x {} dense", cifar.samples.len(), cifar.dim),
        ],
        &widths,
    );

    // ImageNet-1K: 1000 classes, 1.3M samples, 224x224x3.
    let imagenet = generate_dense_images(4096, 100, args.dim(1_300_000).min(2000), 6);
    print_row(
        &[
            "ImageNet-1K".into(),
            "1000".into(),
            "1.3M".into(),
            "224x224x3".into(),
            format!(
                "{} x {} dense ({} cls, scaled)",
                imagenet.samples.len(),
                imagenet.dim,
                imagenet.classes
            ),
        ],
        &widths,
    );

    // ATIS: 128 classes, 4 978 sentences / 56 590 words.
    let atis = generate_sequences(1000, 64, args.dim(4978).min(1200), 11, 7);
    let words: usize = atis.sequences.iter().map(|s| s.len()).sum();
    print_row(
        &[
            "ATIS".into(),
            "128".into(),
            "4 978 s/56 590 w".into(),
            "-".into(),
            format!(
                "{} s/{} w, vocab {}",
                atis.sequences.len(),
                words,
                atis.vocab
            ),
        ],
        &widths,
    );

    // Hansards: 948K sentence pairs / 15 657K words.
    let hansards = generate_sequences(4000, 32, args.dim(948_000).min(1200), 17, 8);
    let words: usize = hansards.sequences.iter().map(|s| s.len()).sum();
    print_row(
        &[
            "Hansards".into(),
            "-".into(),
            "948K s/15 657K w".into(),
            "-".into(),
            format!(
                "{} s/{} w, vocab {}",
                hansards.sequences.len(),
                words,
                hansards.vocab
            ),
        ],
        &widths,
    );
    println!();
    println!(
        "(sample counts scaled by --scale {}; feature dimensions preserved)",
        args.scale
    );
}
