//! §8.2 Apache Spark comparison.
//!
//! The paper compares MPI-OPT (dense Cray allreduce and SparCML sparse
//! allreduce) against Spark v1.6 on the URL task. Spark aggregates through
//! its driver: every executor ships its (dense) update to the driver,
//! which reduces and broadcasts back — plus substantial per-iteration task
//! scheduling overhead. We model exactly that topology on the same
//! virtual-time network: a coordinator-based dense exchange with a fixed
//! per-iteration scheduling cost (250 ms, a conservative figure for Spark
//! 1.x task launch + result serialization; the paper's gap also includes
//! JVM serialization, which this folds in).
//!
//! Expected shape: dense-MPI ≈ tens of times faster than driver-based
//! aggregation; SparCML adds a further multiple on top (paper: 31x and
//! 63x to convergence at 8 nodes on Aries).

use bytes::Bytes;
use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::{run_communicators, Algorithm, Communicator, Endpoint};
use sparcml_net::CostModel;
use sparcml_opt::data::{generate_sparse, SparseDataset, SparseGenConfig};
use sparcml_opt::loss::LinearLoss;
use sparcml_opt::sgd::{sparse_batch_gradient, train_distributed, SgdConfig};
use sparcml_opt::LrSchedule;
use sparcml_stream::SparseStream;

/// Per-iteration driver scheduling + serialization overhead (seconds).
const SPARK_OVERHEAD_S: f64 = 0.25;

/// One epoch of driver-based dense aggregation; returns (total, comm).
fn spark_like_epoch(ds: &SparseDataset, p: usize, cost: CostModel, batch: usize) -> (f64, f64) {
    let times = run_communicators(p, cost, |comm| {
        let shard = ds.shard(p, comm.rank());
        let dim = ds.dim;
        let mut w = vec![0.0f32; dim];
        let mut comm_time = 0.0f64;
        let nbatches = (shard.len() / batch).max(1);
        for b in 0..nbatches {
            let lo = b * batch;
            let hi = (lo + batch).min(shard.len());
            let refs: Vec<&sparcml_opt::data::SparseSample> = shard[lo..hi].iter().collect();
            let (grad, ops) = sparse_batch_gradient(&w, &refs, LinearLoss::Logistic, 0.0);
            comm.compute(ops);
            let mut dense = grad.clone();
            dense.densify();
            let t0 = comm.clock();
            let total = driver_aggregate(comm, &dense);
            comm_time += comm.clock() - t0;
            for (i, g) in total.iter_nonzero() {
                w[i as usize] -= 0.3 / (p * batch) as f32 * g;
            }
        }
        (comm.clock(), comm_time)
    });
    let total = times.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    let comm = times.iter().map(|(_, c)| *c).fold(0.0, f64::max);
    (total, comm)
}

/// Driver-based aggregation: executors send dense vectors to rank 0; the
/// driver reduces, then sends the dense result to every executor, plus
/// the fixed scheduling overhead.
fn driver_aggregate(
    comm: &mut Communicator<Endpoint>,
    dense: &SparseStream<f32>,
) -> SparseStream<f32> {
    // Driver topology is not a SparCML collective: model it with raw
    // point-to-point messaging on the communicator's transport.
    let ep = comm.transport_mut();
    let op = ep.next_op_id();
    let tag = op << 4;
    ep.charge_seconds(SPARK_OVERHEAD_S); // task scheduling barrier
    if ep.rank() == 0 {
        let mut acc = dense.clone();
        for src in 1..ep.size() {
            let bytes = ep.recv(src, tag).unwrap();
            let theirs = SparseStream::<f32>::decode(&bytes).unwrap();
            acc.add_assign(&theirs).unwrap();
            ep.compute(dense.dim());
        }
        let payload: Bytes = acc.encode();
        for dst in 1..ep.size() {
            ep.send(dst, tag + 1, payload.clone()).unwrap();
        }
        acc
    } else {
        ep.send(0, tag, dense.encode()).unwrap();
        let bytes = ep.recv(0, tag + 1).unwrap();
        SparseStream::decode(&bytes).unwrap()
    }
}

fn main() {
    let args = BenchArgs::parse();
    header(
        "Spark comparison (§8.2)",
        "URL-like logistic regression on 8 nodes: driver-based dense aggregation\n\
         (Spark-like) vs dense MPI allreduce vs SparCML sparse allreduce.",
    );
    let mut gen = SparseGenConfig::url_like(2048);
    gen.dim = args.dim(gen.dim);
    let ds = generate_sparse(&gen);
    let p = 8;
    let batch = 128;

    for (net_name, cost) in [
        ("Aries (Piz Daint)", CostModel::aries()),
        ("GigE", CostModel::gige()),
    ] {
        println!("--- {net_name} ---");
        let (spark_t, spark_c) = spark_like_epoch(&ds, p, cost, batch);
        let mk = |algo| SgdConfig {
            lr: LrSchedule::Const(0.3),
            batch_per_node: batch,
            epochs: 1,
            algorithm: algo,
            ..Default::default()
        };
        let dense = train_distributed(&ds, p, cost, &mk(Algorithm::DenseRabenseifner));
        let sparse = train_distributed(&ds, p, cost, &mk(Algorithm::SsarSplitAllgather));
        let (dt, dc) = (dense.epochs[0].total_time, dense.epochs[0].comm_time);
        let (st, sc) = (sparse.epochs[0].total_time, sparse.epochs[0].comm_time);
        let widths = vec![24usize, 16, 16, 20];
        print_row(
            ["layer", "epoch(total)", "epoch(comm)", "speedup vs Spark"]
                .map(String::from)
                .as_ref(),
            &widths,
        );
        print_row(
            &[
                "Spark-like driver".into(),
                fmt_time(spark_t),
                fmt_time(spark_c),
                "1.00x".into(),
            ],
            &widths,
        );
        print_row(
            &[
                "dense MPI allreduce".into(),
                fmt_time(dt),
                fmt_time(dc),
                format!("{:.1}x ({:.1}x comm)", spark_t / dt, spark_c / dc),
            ],
            &widths,
        );
        print_row(
            &[
                "SparCML sparse".into(),
                fmt_time(st),
                fmt_time(sc),
                format!("{:.1}x ({:.1}x comm)", spark_t / st, spark_c / sc),
            ],
            &widths,
        );
        println!();
    }
    println!(
        "(paper at 8 Aries nodes: dense-MPI 31x, SparCML 63x to convergence;\n\
              our per-epoch ratios should show the same ordering and magnitude class)"
    );
}
