//! Ablation: the δ switching threshold (§5.1).
//!
//! The paper argues the volume-equality threshold `δ = N·isize/(c+isize)`
//! should be shrunk in practice because sparse summation costs more
//! compute than dense summation. This ablation sweeps the policy factor
//! and reports virtual completion times (bandwidth + γ-compute) of
//! `SSAR_Recursive_double` at a fill level near the switching point,
//! plus the never-densify extreme — quantifying how much the adaptive
//! switch actually buys.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::{max_communicator_time, Algorithm};
use sparcml_net::CostModel;
use sparcml_stream::{random_sparse, DensityPolicy};

fn main() {
    let _args = BenchArgs::parse();
    header(
        "Ablation: δ switching policy (§5.1)",
        "SSAR_Recursive_double completion time vs density-policy factor, P = 16,\n\
         N = 2^18, per-rank density chosen so the reduction crosses δ mid-way.",
    );
    let p = 16;
    let n = 1 << 18;
    // k such that E[K] ≈ 0.75·N: heavy fill-in, the regime where the
    // switch matters.
    let k = n / 10;
    let factors = [
        ("0.25", DensityPolicy { factor: 0.25 }),
        ("0.5 (conservative)", DensityPolicy::conservative()),
        ("1.0 (volume-equal)", DensityPolicy::default()),
        ("never densify", DensityPolicy::never_densify()),
    ];
    let widths = vec![22usize, 14, 14];
    print_row(
        ["policy factor", "aries", "gige"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    for (name, policy) in factors {
        let mut row = vec![name.to_string()];
        for cost in [CostModel::aries(), CostModel::gige()] {
            let t = max_communicator_time(p, cost, |comm| {
                let input = random_sparse::<f32>(n, k, 2024 + comm.rank() as u64);
                comm.allreduce(&input)
                    .algorithm(Algorithm::SsarRecDbl)
                    .policy(policy)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap();
            });
            row.push(fmt_time(t));
        }
        print_row(&row, &widths);
    }
    println!();
    println!(
        "expected shape: never-densify pays pair-format bandwidth (2x words) and\n\
         merge compute on a nearly dense result; aggressive factors densify early\n\
         and pay dense bandwidth sooner. The volume-equality default sits between."
    );
}
