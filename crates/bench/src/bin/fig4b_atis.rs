//! Figure 4b: training accuracy of the LSTM on the ATIS-like task,
//! Top-k (2 of 512, ~0.4% density) vs full dense SGD.
//!
//! Expected shape: the sparse curve tracks the dense one within ~1%
//! throughout training — SparCML's headline "no accuracy loss at 0.4%
//! density" result for language models. The LSTM's embedding gradients
//! are naturally sparse, which is why such aggressive Top-k works.

use sparcml_bench::{fmt_bytes, header, print_row, BenchArgs};
use sparcml_net::CostModel;
use sparcml_opt::data::generate_sequences;
use sparcml_opt::{train_lstm_distributed, Compression, LrSchedule, NnTrainConfig, TopKConfig};

fn main() {
    let args = BenchArgs::parse();
    header(
        "Figure 4b",
        "LSTM training accuracy per epoch on the ATIS-like task: dense vs Top-k 2/512.",
    );
    let vocab = args.dim(10_000).clamp(300, 2000);
    let classes = 16;
    let ds = generate_sequences(vocab, classes, 768, 10, 21);
    let epochs = 20;
    let p = 4;
    let base = NnTrainConfig {
        epochs,
        lr: LrSchedule::Const(0.5),
        batch_per_node: 8,
        ..Default::default()
    };
    let sparse = NnTrainConfig {
        compression: Compression::TopK(TopKConfig {
            k_per_bucket: 2,
            bucket_size: 512,
        }),
        ..base.clone()
    };
    // Our stand-in model is ~500x smaller than the paper's 20M-param ATIS
    // LSTM, so 0.4% density delays updates proportionally more; a single
    // LR retune compensates (the paper likewise retunes the initial LR for
    // its strong-scaled ASR run).
    let sparse_tuned = NnTrainConfig {
        lr: LrSchedule::Const(2.0),
        compression: Compression::TopK(TopKConfig {
            k_per_bucket: 2,
            bucket_size: 512,
        }),
        ..base.clone()
    };

    let (_, dense_stats) = train_lstm_distributed(&ds, 16, 32, p, CostModel::aries(), &base);
    let (_, sparse_stats) = train_lstm_distributed(&ds, 16, 32, p, CostModel::aries(), &sparse);
    let (_, tuned_stats) =
        train_lstm_distributed(&ds, 16, 32, p, CostModel::aries(), &sparse_tuned);

    let widths = vec![8usize, 16, 16, 20];
    print_row(
        ["epoch", "dense", "topk 2/512", "topk 2/512 (lr x4)"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    for e in 0..epochs {
        print_row(
            &[
                format!("{e}"),
                format!("{:.1}%", dense_stats[e].accuracy * 100.0),
                format!("{:.1}%", sparse_stats[e].accuracy * 100.0),
                format!("{:.1}%", tuned_stats[e].accuracy * 100.0),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "final: dense {:.1}% vs topk {:.1}% vs topk-tuned {:.1}% (paper: within 1%)",
        dense_stats.last().unwrap().accuracy * 100.0,
        sparse_stats.last().unwrap().accuracy * 100.0,
        tuned_stats.last().unwrap().accuracy * 100.0
    );
    println!(
        "bytes/epoch: dense {} vs topk {} ({}x reduction; the paper's ATIS model\n\
         shrinks 80 MB of gradients to <0.5 MB per step)",
        fmt_bytes(dense_stats[0].bytes_sent),
        fmt_bytes(sparse_stats[0].bytes_sent),
        dense_stats[0].bytes_sent / sparse_stats[0].bytes_sent.max(1)
    );
}
