//! §8.2 SCD experiment: sparse vs dense allgather for distributed
//! stochastic coordinate descent on the URL task, 8 nodes of Piz Daint.
//!
//! Paper: dense allgather epoch = 49 s (24 s comm); sparse allgather
//! epoch = 26 s (4.5 s comm) — overall 1.8x from a 5.3x communication
//! speedup. The shape to reproduce: several-fold communication speedup
//! that translates into a more modest end-to-end win because compute is
//! untouched.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_net::CostModel;
use sparcml_opt::data::{generate_sparse, SparseGenConfig};
use sparcml_opt::scd::{train_scd, ScdConfig, ScdExchange};

fn main() {
    let args = BenchArgs::parse();
    header(
        "SCD (§8.2)",
        "Distributed random block coordinate descent on URL-like data, 8 nodes,\n\
         100 coordinates per node per iteration: sparse vs dense allgather.",
    );
    let mut gen = SparseGenConfig::url_like(2048);
    gen.dim = args.dim(gen.dim);
    let ds = generate_sparse(&gen);
    let cost = CostModel::aries();

    let mk = |exchange| ScdConfig {
        coords_per_iter: 100,
        iters_per_epoch: 25,
        epochs: 2,
        exchange,
        ..Default::default()
    };
    let (_, sparse) = train_scd(&ds, 8, cost, &mk(ScdExchange::SparseAllgather));
    let (_, dense) = train_scd(&ds, 8, cost, &mk(ScdExchange::DenseAllgather));

    let widths = vec![18usize, 16, 16, 12];
    print_row(
        ["exchange", "epoch(total)", "epoch(comm)", "final loss"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    let avg = |s: &[sparcml_opt::scd::ScdEpochStats],
               f: fn(&sparcml_opt::scd::ScdEpochStats) -> f64| {
        s.iter().map(f).sum::<f64>() / s.len() as f64
    };
    let (dt, dc) = (avg(&dense, |e| e.total_time), avg(&dense, |e| e.comm_time));
    let (st, sc) = (
        avg(&sparse, |e| e.total_time),
        avg(&sparse, |e| e.comm_time),
    );
    print_row(
        &[
            "dense allgather".into(),
            fmt_time(dt),
            fmt_time(dc),
            format!("{:.4}", dense.last().unwrap().loss),
        ],
        &widths,
    );
    print_row(
        &[
            "sparse allgather".into(),
            fmt_time(st),
            fmt_time(sc),
            format!("{:.4}", sparse.last().unwrap().loss),
        ],
        &widths,
    );
    println!();
    println!(
        "speedup: {:.2}x end-to-end from {:.2}x communication (paper: 1.8x from 5.3x)",
        dt / st,
        dc / sc
    );
}
