//! Verifies that measured virtual completion times fall inside the
//! analytic envelopes of §5.3 (Lemma 5.1/5.2 and the per-algorithm
//! bounds) across a sweep of workloads and both overlap extremes.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::bounds::{self, Workload};
use sparcml_core::{max_communicator_time, Algorithm};
use sparcml_net::CostModel;
use sparcml_stream::{random_sparse, SparseStream};

/// Measures with fully-overlapping supports (K = k): every rank holds the
/// same indices.
fn time_full_overlap(algo: Algorithm, p: usize, n: usize, k: usize, cost: CostModel) -> f64 {
    let shared = random_sparse::<f32>(n, k, 777);
    max_communicator_time(p, cost, move |comm| {
        comm.allreduce(&shared)
            .algorithm(algo)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
    })
}

/// Measures with disjoint, *partition-balanced* supports (K = P·k spread
/// evenly over the index space — the paper's worst case implicitly assumes
/// this balance: "every node has exactly k items").
fn time_disjoint(algo: Algorithm, p: usize, n: usize, k: usize, cost: CostModel) -> f64 {
    let stride = (n / (p * k)).max(1);
    max_communicator_time(p, cost, move |comm| {
        let r = comm.rank();
        let pairs: Vec<(u32, f32)> = (0..k)
            .map(|i| (((i * p + r) * stride) as u32, 1.0))
            .collect();
        let input = SparseStream::from_pairs(n, &pairs).unwrap();
        comm.allreduce(&input)
            .algorithm(algo)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
    })
}

/// Measures with disjoint supports all *concentrated in one partition* —
/// a pathological imbalance outside the paper's analysis assumptions.
fn time_concentrated(algo: Algorithm, p: usize, n: usize, k: usize, cost: CostModel) -> f64 {
    max_communicator_time(p, cost, move |comm| {
        let lo = (comm.rank() * k) as u32;
        let pairs: Vec<(u32, f32)> = (lo..lo + k as u32).map(|i| (i, 1.0)).collect();
        let input = SparseStream::from_pairs(n, &pairs).unwrap();
        comm.allreduce(&input)
            .algorithm(algo)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
    })
}

fn main() {
    let _args = BenchArgs::parse();
    header(
        "Bounds check (§5.3)",
        "Measured virtual times vs analytic lower/upper bounds, both overlap extremes.\n\
         Compute (γ) is excluded from the model here, as in the paper's bounds\n\
         ('only valid for negligible computational cost').",
    );
    let mut cost = CostModel::aries();
    cost.gamma = 0.0; // the paper's bounds ignore reduction compute
    let configs = [
        (8usize, 1 << 18, 1 << 10),
        (16, 1 << 18, 1 << 12),
        (4, 1 << 16, 1 << 8),
    ];
    let algos = [Algorithm::SsarRecDbl, Algorithm::SsarSplitAllgather];

    let widths = vec![22usize, 12, 11, 11, 11, 8];
    print_row(
        ["algorithm", "P/N/k", "lower", "measured", "upper", "ok?"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    let mut all_ok = true;
    for &(p, n, k) in &configs {
        let w = Workload {
            p,
            n,
            k,
            value_bytes: 4,
        };
        for algo in algos {
            let env = match algo {
                Algorithm::SsarRecDbl => bounds::ssar_rec_dbl(&w, &cost),
                Algorithm::SsarSplitAllgather => bounds::ssar_split_ag(&w, &cost),
                _ => unreachable!(),
            };
            for (label, t) in [
                ("overlap", time_full_overlap(algo, p, n, k, cost)),
                ("disjoint", time_disjoint(algo, p, n, k, cost)),
            ] {
                // Envelope with 10% slack for wire-format headers.
                let ok = t >= env.lower * 0.9 && t <= env.upper * 1.1;
                all_ok &= ok;
                print_row(
                    &[
                        format!("{} ({label})", algo.name()),
                        format!("{p}/{n}/{k}"),
                        fmt_time(env.lower),
                        fmt_time(t),
                        fmt_time(env.upper),
                        (if ok { "yes" } else { "NO" }).to_string(),
                    ],
                    &widths,
                );
            }
        }
    }
    println!();
    println!(
        "informational — concentrated supports (all ranks' data in one partition),\n\
         a case OUTSIDE the paper's balanced-partition assumption; split-allgather\n\
         legitimately exceeds its 'upper bound' here because one rank carries K items\n\
         through every allgather round:"
    );
    {
        let (p, n, k) = (8usize, 1 << 18, 1 << 10);
        let w = Workload {
            p,
            n,
            k,
            value_bytes: 4,
        };
        let env = bounds::ssar_split_ag(&w, &cost);
        let t = time_concentrated(Algorithm::SsarSplitAllgather, p, n, k, cost);
        println!(
            "  SSAR_Split_allgather concentrated: measured {} vs balanced upper {}",
            fmt_time(t),
            fmt_time(env.upper)
        );
    }
    println!();
    // Lemma 5.2 sanity: DSAR measured time respects the δβd floor.
    let (p, n) = (8usize, 1 << 18);
    let k = n / 8;
    let t = time_disjoint(Algorithm::DsarSplitAllgather, p, n, k, cost);
    let w = Workload {
        p,
        n,
        k,
        value_bytes: 4,
    };
    let floor = bounds::lemma_5_2(&w, &cost, n / 2);
    println!(
        "Lemma 5.2: DSAR measured {} >= floor {} : {}",
        fmt_time(t),
        fmt_time(floor),
        t >= floor * 0.9
    );
    println!();
    println!("all bounds respected: {all_ok}");
    if !all_ok {
        std::process::exit(1);
    }
}
