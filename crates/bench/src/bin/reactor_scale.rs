//! Transport-scale benchmark: thread-per-peer TCP vs the reactor.
//!
//! The thread-per-peer `TcpTransport` spends `2·(P−1)` I/O threads per
//! rank — at P = 64 a loopback mesh in one process sits on ~8000 OS
//! threads. The `ReactorTransport` replaces that with one epoll event
//! loop per rank. This harness quantifies the trade at the
//! BENCH_reactor.json grid — P ∈ {8, 16, 64}, k ∈ {1e3, 1e5},
//! N = 2^20 f32 — reporting, per backend and P:
//!
//! * the live process thread count and its per-rank transport share,
//! * the resident set (VmRSS),
//! * the median SSAR allreduce wall time at each k.
//!
//! ```console
//! cargo run --release -p sparcml-bench --bin reactor_scale
//! ```

use std::time::{Duration, Instant};

use sparcml_core::{Algorithm, Communicator, Transport};
use sparcml_net::{
    run_reactor_loopback_cluster, run_tcp_loopback_cluster, CostModel, TransportConfig,
};
use sparcml_stream::random_sparse;

const DIM: usize = 1 << 20;
const TRIALS: usize = 3;
const ALGO: Algorithm = Algorithm::SsarRecDbl;

#[derive(Clone, Copy)]
enum Backend {
    Tcp,
    Reactor,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Tcp => "tcp",
            Backend::Reactor => "reactor",
        }
    }
}

/// A field of `/proc/self/status`, parsed as an integer (Linux only;
/// `None` elsewhere — the JSON then reports nulls but the timings stand).
fn proc_status(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix(field))
        .and_then(|v| {
            v.trim_start_matches(':')
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .ok()
        })
}

/// Per-rank trial loop, written once against the `Transport` trait and
/// monomorphized per backend. Returns (wall times, threads, VmRSS kB)
/// with the process-wide samples taken while the full mesh is live.
fn trial_loop<T: Transport + Send + 'static>(
    tp: &mut T,
    k: usize,
) -> (Vec<f64>, Option<u64>, Option<u64>) {
    let mut comm = Communicator::new(tp.detach());
    let input = random_sparse::<f32>(DIM, k, 4200 + comm.rank() as u64);
    let mut times = Vec::with_capacity(TRIALS);
    let mut threads = None;
    let mut rss = None;
    for trial in 0..=TRIALS {
        let start = Instant::now();
        let out = comm
            .allreduce(&input)
            .algorithm(ALGO)
            .launch()
            .and_then(|h| h.wait())
            .expect("allreduce over loopback sockets");
        assert_eq!(out.dim(), DIM);
        if trial == 0 {
            // Warmup trial (connection + allocator ramp); sample the
            // steady-state process shape while every rank's mesh is up.
            threads = proc_status("Threads");
            rss = proc_status("VmRSS");
        } else {
            times.push(start.elapsed().as_secs_f64());
        }
    }
    *tp = comm.into_transport();
    (times, threads, rss)
}

struct Sample {
    median_wall_us: f64,
    threads: Option<u64>,
    rss_kb: Option<u64>,
}

fn bench_config(backend: Backend, p: usize, k: usize) -> Sample {
    let config = TransportConfig::default()
        .with_recv_timeout(Duration::from_secs(300))
        .with_connect_timeout(Duration::from_secs(300));
    let cost = CostModel::loopback_tcp();
    let per_rank = match backend {
        Backend::Tcp => run_tcp_loopback_cluster(p, cost, config, |tp| trial_loop(tp, k)),
        Backend::Reactor => run_reactor_loopback_cluster(p, cost, config, |tp| trial_loop(tp, k)),
    };
    let mut slowest: Vec<f64> = (0..TRIALS)
        .map(|t| per_rank.iter().map(|r| r.0[t]).fold(0.0, f64::max))
        .collect();
    slowest.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    Sample {
        median_wall_us: slowest[TRIALS / 2] * 1e6,
        threads: per_rank.iter().filter_map(|r| r.1).max(),
        rss_kb: per_rank.iter().filter_map(|r| r.2).max(),
    }
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |v| v.to_string())
}

fn main() {
    let ps = [8usize, 16, 64];
    let ks = [1_000usize, 100_000];
    println!("{{");
    println!(
        "  \"description\": \"Thread-per-peer TCP vs reactor transport at scale (median of {TRIALS} trials, max across ranks per trial): {} allreduce wall time, live process threads, and VmRSS with the full loopback mesh up. Ranks are threads in one process; every message crosses the kernel TCP stack. N = {DIM} f32.\",",
        ALGO.name()
    );
    println!("  \"harness\": \"cargo run --release -p sparcml-bench --bin reactor_scale\",");
    println!("  \"backends\": {{");
    for (bi, backend) in [Backend::Tcp, Backend::Reactor].iter().enumerate() {
        println!("    \"{}\": {{", backend.name());
        for (pi, &p) in ps.iter().enumerate() {
            let mut line = String::new();
            let mut shape: (Option<u64>, Option<u64>) = (None, None);
            for (ki, &k) in ks.iter().enumerate() {
                let s = bench_config(*backend, p, k);
                eprintln!(
                    "{} P={p} k={k}: {:.0} us, threads={:?}, rss={:?} kB",
                    backend.name(),
                    s.median_wall_us,
                    s.threads,
                    s.rss_kb
                );
                line.push_str(&format!(
                    "        \"k={k}_wall_us\": {:.0},\n",
                    s.median_wall_us
                ));
                if ki == 0 {
                    shape = (s.threads, s.rss_kb);
                }
            }
            // Transport share of the thread count: subtract the main
            // thread and the P rank-closure threads.
            let per_rank = shape
                .0
                .map(|t| (t.saturating_sub(1 + p as u64)) as f64 / p as f64);
            println!("      \"P={p}\": {{");
            print!("{line}");
            println!("        \"threads\": {},", json_opt(shape.0));
            println!(
                "        \"transport_threads_per_rank\": {},",
                per_rank.map_or("null".to_string(), |v| format!("{v:.1}"))
            );
            println!("        \"rss_kb\": {}", json_opt(shape.1));
            let comma = if pi + 1 < ps.len() { "," } else { "" };
            println!("      }}{comma}");
        }
        let comma = if bi == 0 { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  }}");
    println!("}}");
}
