//! δ-switch micro-benchmark: pure-sparse vs pure-dense vs in-collective
//! adaptive switching over loopback TCP — the wall-clock evidence behind
//! BENCH_adaptive.json.
//!
//! For each configuration (k ∈ {1e2, 1e4, 1e5}, P ∈ {4, 8},
//! 2^20-dimensional f32 inputs) one allreduce is timed three ways on
//! real sockets:
//!
//! * **sparse** — `SSAR_Recursive_double`, sparse frames to the end even
//!   when the union fills in;
//! * **dense** — `Dense_recursive_double`, full vectors from round 0;
//! * **adaptive** — `Adaptive_switch`: starts sparse, projects the
//!   end-of-collective union density each merge round, and flips the
//!   *remaining* rounds dense once the projection crosses δ.
//!
//! Prints a JSON document with median wall times (max across ranks per
//! trial), the adaptive-vs-best ratio, and the δ-switch counters
//! (`adaptive_densified`, `switch_rounds`) proving when the switch
//! actually fired.
//!
//! ```console
//! cargo run --release -p sparcml-bench --bin adaptive_switch
//! ```

use std::time::{Duration, Instant};

use sparcml_core::{Algorithm, Communicator, Transport};
use sparcml_net::{run_tcp_loopback_cluster, CostModel, TransportConfig};
use sparcml_stream::random_sparse;

const DIM: usize = 1 << 20;
const TRIALS: usize = 15;

struct Measured {
    wall_s: f64,
    adaptive_densified: u64,
    switch_rounds: u64,
}

fn bench(p: usize, k: usize, algo: Algorithm) -> Measured {
    let config = TransportConfig::default().with_recv_timeout(Duration::from_secs(120));
    let per_rank = run_tcp_loopback_cluster(p, CostModel::loopback_tcp(), config, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let input = random_sparse::<f32>(DIM, k, (9000 + comm.rank()) as u64);
        let mut walls = Vec::with_capacity(TRIALS);
        for trial in 0..=TRIALS {
            let start = Instant::now();
            comm.allreduce(&input)
                .algorithm(algo)
                .launch()
                .and_then(|h| h.wait())
                .expect("bench allreduce");
            if trial > 0 {
                walls.push(start.elapsed().as_secs_f64());
            }
        }
        let stats = comm.stats_snapshot();
        *tp = comm.into_transport();
        (walls, stats.adaptive_densified, stats.switch_rounds)
    });
    let mut slowest: Vec<f64> = (0..TRIALS)
        .map(|t| per_rank.iter().map(|r| r.0[t]).fold(0.0, f64::max))
        .collect();
    slowest.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    Measured {
        wall_s: slowest[TRIALS / 2],
        adaptive_densified: per_rank[0].1,
        switch_rounds: per_rank[0].2,
    }
}

fn main() {
    println!("{{");
    println!(
        "  \"description\": \"Pure-sparse (SSAR_Recursive_double) vs pure-dense (Dense_recursive_double) vs Adaptive_switch allreduce of {DIM}-dim f32 inputs with k random non-zeros per rank over loopback TCP: median wall time (max across ranks per trial, {TRIALS} trials). adaptive_densified/switch_rounds are rank 0's δ-switch counters across all trials.\","
    );
    println!("  \"harness\": \"cargo run --release -p sparcml-bench --bin adaptive_switch\",");
    println!("  \"configs\": {{");
    let ps = [4usize, 8];
    let ks = [100usize, 10_000, 100_000];
    for (pi, &p) in ps.iter().enumerate() {
        println!("    \"P={p}\": {{");
        for (ki, &k) in ks.iter().enumerate() {
            let sparse = bench(p, k, Algorithm::SsarRecDbl);
            let dense = bench(p, k, Algorithm::DenseRecDbl);
            let adaptive = bench(p, k, Algorithm::AdaptiveSwitch);
            let best = sparse.wall_s.min(dense.wall_s);
            println!("      \"k={k}\": {{");
            println!("        \"sparse_wall_us\": {:.0},", sparse.wall_s * 1e6);
            println!("        \"dense_wall_us\": {:.0},", dense.wall_s * 1e6);
            println!(
                "        \"adaptive_wall_us\": {:.0},",
                adaptive.wall_s * 1e6
            );
            println!(
                "        \"adaptive_vs_best\": {:.2},",
                adaptive.wall_s / best
            );
            println!(
                "        \"adaptive_vs_sparse\": {:.2},",
                adaptive.wall_s / sparse.wall_s
            );
            println!(
                "        \"adaptive_densified\": {},",
                adaptive.adaptive_densified
            );
            println!("        \"switch_rounds\": {}", adaptive.switch_rounds);
            let comma = if ki + 1 < ks.len() { "," } else { "" };
            println!("      }}{comma}");
            eprintln!(
                "P={p} k={k}: sparse {:.0}us dense {:.0}us adaptive {:.0}us (vs best {:.2}x), switched {} rounds {}",
                sparse.wall_s * 1e6,
                dense.wall_s * 1e6,
                adaptive.wall_s * 1e6,
                adaptive.wall_s / best,
                adaptive.adaptive_densified,
                adaptive.switch_rounds
            );
        }
        let comma = if pi + 1 < ps.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  }}");
    println!("}}");
}
