//! §8.4 ImageNet at 64 nodes: where sparsification helps and where it
//! does not.
//!
//! Paper: ResNet-50 gains only ≈6% (1950 s vs 2071 s per epoch) because
//! (1) at 64 nodes its Top-k gradients densify during aggregation and
//! (2) it overlaps well already; the 4x wide ResNet-18/34 gain ≈2x/1.85x,
//! "due almost entirely to the reduced aggregation time on the last
//! fully-connected layer". We reproduce both effects: the fill-in is
//! measured with E\[K\], and the FC-dominated speedup emerges from the
//! layer-wise overlap model.

use sparcml_bench::{fmt_time, header, print_row, BenchArgs};
use sparcml_core::theory::expected_union_size;
use sparcml_core::Algorithm;
use sparcml_net::CostModel;
use sparcml_trainsim::{step_time, AnalyticEstimator, Exchange, GpuSpec, ModelSpec, SyncStrategy};

fn main() {
    let _args = BenchArgs::parse();
    header(
        "§8.4 ImageNet, 64 nodes",
        "Per-step time, dense baseline vs Top-k SGD. Paper: ResNet-50 ≈ +6%,\n\
         4xResNet-18 ≈ 2x, 4xResNet-34 ≈ 1.85x.",
    );
    // Same support-correlation assumption as the other trainsim figures.
    let est = AnalyticEstimator::with_support_overlap(CostModel::aries(), 0.2);
    let gpu = GpuSpec::p100();
    let p = 64;

    // ResNet-50: 99% sparsity (k≈5/512); wide variants: k = 1/512.
    let cases: Vec<(ModelSpec, usize, usize, &str)> = vec![
        (ModelSpec::resnet50(), 8, 5, "+6% (1.06x)"),
        (ModelSpec::wide_resnet18_4x(), 4, 1, "~2x"),
        (ModelSpec::wide_resnet34_4x(), 4, 1, "~1.85x"),
    ];

    let widths = vec![14usize, 13, 13, 12, 10, 12];
    print_row(
        [
            "model",
            "dense step",
            "sparse step",
            "speedup",
            "paper",
            "fc params",
        ]
        .map(String::from)
        .as_ref(),
        &widths,
    );
    for (model, batch, k, paper) in &cases {
        let dense = step_time(
            model,
            p,
            *batch,
            &gpu,
            &SyncStrategy::PerLayer(Exchange::dense()),
            &est,
        );
        let sparse = step_time(
            model,
            p,
            *batch,
            &gpu,
            &SyncStrategy::PerLayer(Exchange::TopK {
                k_per_bucket: *k,
                algorithm: Algorithm::SsarRecDbl,
                quant: None,
            }),
            &est,
        );
        print_row(
            &[
                model.name.clone(),
                fmt_time(dense.total),
                fmt_time(sparse.total),
                format!("{:.2}x", dense.total / sparse.total),
                paper.to_string(),
                format!("{}", model.layers.last().unwrap().params),
            ],
            &widths,
        );
    }

    println!();
    println!("fill-in analysis (why ResNet-50 cannot win — §8.4 item (1)):");
    let widths = vec![14usize, 12, 14, 16];
    print_row(
        ["model", "k/512", "E[K]/N @ P=64", "dense after agg?"]
            .map(String::from)
            .as_ref(),
        &widths,
    );
    for (model, _, k, _) in &cases {
        let n = model.total_params();
        let knode = n * k / 512;
        let ek = expected_union_size(n, p, knode);
        let frac = ek / n as f64;
        print_row(
            &[
                model.name.clone(),
                format!("{k}"),
                format!("{:.1}%", frac * 100.0),
                (if frac > 0.25 {
                    "yes (DSAR regime)"
                } else {
                    "no"
                })
                .to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "ResNet-50 at k=5/512 and P=64 fills to ~{:.0}% — gradients 'become dense\n\
         during aggregation, which limits our speedup' (§8.4).",
        expected_union_size(
            ModelSpec::resnet50().total_params(),
            64,
            ModelSpec::resnet50().total_params() * 5 / 512
        ) / ModelSpec::resnet50().total_params() as f64
            * 100.0
    );
}
