//! Shared utilities for the SparCML benchmark harness.
//!
//! Every binary in `src/bin` regenerates one table or figure of the paper
//! (see DESIGN.md §5 for the index) and prints a plain-text table. Most
//! binaries accept `--scale <f>` to shrink problem dimensions for quick
//! runs (default scales are chosen to finish in seconds; `--full` restores
//! paper-sized dimensions where feasible).

/// Simple command-line options shared by the bench binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dimension scale factor in `(0, 1]` (1.0 = paper-sized).
    pub scale: f64,
    /// Whether `--scale` was given explicitly.
    pub scale_explicit: bool,
    /// Run the full paper-sized configuration.
    pub full: bool,
}

impl BenchArgs {
    /// Parses `--scale <f>` and `--full` from `std::env::args`.
    pub fn parse() -> Self {
        let mut scale = None;
        let mut full = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    scale = args
                        .next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|v| *v > 0.0 && *v <= 1.0);
                }
                "--full" => full = true,
                "--help" | "-h" => {
                    eprintln!("options: --scale <0..1]  --full");
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown option {other}"),
            }
        }
        let scale_explicit = scale.is_some();
        let scale = scale.unwrap_or(if full { 1.0 } else { 0.05 });
        BenchArgs {
            scale,
            scale_explicit,
            full,
        }
    }

    /// The scale to use when a binary prefers a different default.
    pub fn scale_or(&self, default: f64) -> f64 {
        if self.scale_explicit || self.full {
            self.scale
        } else {
            default
        }
    }

    /// Scales a paper-sized dimension.
    pub fn dim(&self, paper: usize) -> usize {
        ((paper as f64 * self.scale) as usize).max(64)
    }
}

/// Prints a row of fixed-width cells.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// Formats a byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Emits a section header for a table/figure reproduction.
pub fn header(title: &str, what: &str) {
    println!();
    println!("=== {title} ===");
    println!("{what}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5e-6), "5.0us");
        assert_eq!(fmt_time(0.0123), "12.30ms");
        assert_eq!(fmt_time(3.5), "3.50s");
        assert_eq!(fmt_time(600.0), "10.0min");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
    }

    #[test]
    fn dim_scaling_clamps() {
        let a = BenchArgs {
            scale: 0.01,
            scale_explicit: true,
            full: false,
        };
        assert_eq!(a.dim(100), 64); // clamped at 64
        assert_eq!(a.dim(1_000_000), 10_000);
    }
}
