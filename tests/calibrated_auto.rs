//! Measurement-calibrated `Auto` selection (the `ObservedCostModel`).
//!
//! The scenario the calibrator exists for: the planning cost model the
//! selector consults (the transport's "hint") disagrees with the network
//! the job actually runs on, so the static §5.3 preset picks a schedule
//! that is not the empirically fastest one. A calibrating session
//! measures each candidate during warm-up and converges to the true
//! argmin; a preset-backed session keeps running the mis-pick forever.
//!
//! The split is realized with [`Endpoint::set_cost_hint`]: planning sees
//! the hint, the virtual clock keeps charging the endpoint's real cost
//! model — a deterministic stand-in for "the datasheet says α-bound, the
//! fabric is β-bound".

use sparcml::core::{max_communicator_time, run_communicators, select_algorithm, Algorithm};
use sparcml::net::CostModel;
use sparcml::stream::{random_sparse, SparseStream};

const P: usize = 8;
const DIM: usize = 1 << 18;
const K: usize = 100_000;

/// What the selector believes: a latency-dominated fabric, where
/// few-round schedules (recursive doubling) look cheapest.
fn hinted_cost() -> CostModel {
    CostModel {
        alpha: 5e-3,
        beta: 1e-12,
        gamma: 0.0,
        isend_alpha_fraction: 0.0,
    }
}

/// What the wire actually charges: bandwidth-dominated, where the
/// ring's `2(P−1)/P·n·β` transfer volume wins.
fn actual_cost() -> CostModel {
    CostModel {
        alpha: 1e-7,
        beta: 5e-8,
        gamma: 0.0,
        isend_alpha_fraction: 0.0,
    }
}

fn inputs() -> Vec<SparseStream<f32>> {
    (0..P)
        .map(|r| random_sparse(DIM, K, 7 + r as u64))
        .collect()
}

/// The dense-regime candidate set of the §5.3 selector at this
/// workload (`E[K] ≥ δ`), in its exploration order.
const CANDIDATES: [Algorithm; 4] = [
    Algorithm::DsarSplitAllgather,
    Algorithm::DenseRabenseifner,
    Algorithm::DenseRing,
    Algorithm::DenseRecDbl,
];

/// Virtual time of one collective with `algo` pinned, under the network
/// model that actually drives the clock.
fn pinned_time(algo: Algorithm) -> f64 {
    let ins = inputs();
    max_communicator_time(P, actual_cost(), |comm| {
        comm.allreduce(&ins[comm.rank()])
            .algorithm(algo)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
    })
}

fn empirical_best() -> (Algorithm, f64) {
    CANDIDATES
        .iter()
        .map(|&a| (a, pinned_time(a)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
}

#[test]
fn preset_auto_mis_picks_under_a_wrong_planning_model() {
    let (best, best_t) = empirical_best();
    let preset = select_algorithm::<f32>(P, DIM, K, &hinted_cost());
    assert_ne!(
        preset, best,
        "precondition: the hinted model must mis-pick (preset {preset:?} \
         vs empirical best {best:?} at {best_t:.4}s) — otherwise this \
         scenario tests nothing"
    );
    // And the mis-pick is materially slower, not a coin flip.
    let preset_t = pinned_time(preset);
    assert!(
        preset_t > best_t * 1.05,
        "mis-pick {preset:?} ({preset_t:.4}s) should be >5% slower than \
         {best:?} ({best_t:.4}s)"
    );
}

#[test]
fn calibrated_auto_converges_to_the_empirically_fastest_algorithm() {
    let (best, _) = empirical_best();
    let preset = select_algorithm::<f32>(P, DIM, K, &hinted_cost());
    assert_ne!(preset, best, "precondition: hinted model mis-picks");

    let ins = inputs();
    // Warm-up explores each of the 4 candidates `warmup_samples` (2)
    // times; everything after iteration 8 should run the measured argmin.
    const ITERS: usize = 14;
    let picks = run_communicators(P, actual_cost(), |comm| {
        comm.transport_mut().set_cost_hint(hinted_cost());
        let cal = comm.enable_calibration();
        for _ in 0..ITERS {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
        }
        let converged = cal.select::<f32>(P, DIM, K);
        let post_warmup = cal.samples(converged, K);
        (converged, post_warmup)
    });

    for (rank, (converged, post_warmup)) in picks.into_iter().enumerate() {
        assert_eq!(
            converged, best,
            "rank {rank}: calibrated Auto should converge to the \
             empirically fastest algorithm"
        );
        // 2 warm-up samples plus every post-warm-up iteration.
        assert!(
            post_warmup >= 2 + (ITERS as u64 - 2 * CANDIDATES.len() as u64),
            "rank {rank}: converged pick ran only {post_warmup} times"
        );
    }

    // The preset-backed session, by contrast, never leaves the mis-pick:
    // its selection is a pure function of the (wrong) hint.
    let static_picks = run_communicators(P, actual_cost(), |comm| {
        comm.transport_mut().set_cost_hint(hinted_cost());
        for _ in 0..3 {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
        }
        select_algorithm::<f32>(P, DIM, K, comm.cost())
    });
    for pick in static_picks {
        assert_eq!(pick, preset, "preset-backed Auto stays on the mis-pick");
    }
}
