//! Non-power-of-two rank counts: the §A fold/unfold pre/post steps and
//! the ring fallbacks across every algorithm, plus selector behaviour, at
//! P = 3, 5, 6, 7 and 12 — all checked against `reference::reference_sum`.

use sparcml::core::reference::reference_sum;
use sparcml::core::{run_communicators, select_algorithm, Algorithm};
use sparcml::net::CostModel;
use sparcml::stream::{random_sparse, SparseStream};

const NON_POW2_RANKS: [usize; 5] = [3, 5, 6, 7, 12];

fn check_against_reference(algo: Algorithm, p: usize, dim: usize, nnz: usize) {
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, nnz, 7700 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        comm.allreduce(&ins[comm.rank()])
            .algorithm(algo)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    });
    for (rank, out) in outs.iter().enumerate() {
        let got = out.to_dense_vec();
        for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
            assert!(
                (g - e).abs() < 1e-3,
                "{algo:?} P={p} rank {rank} coord {i}: {g} vs {e}"
            );
        }
    }
}

#[test]
fn every_algorithm_handles_non_power_of_two_ranks() {
    for algo in Algorithm::ALL {
        for p in NON_POW2_RANKS {
            check_against_reference(algo, p, 1024, 32);
        }
    }
}

#[test]
fn auto_handles_non_power_of_two_ranks() {
    for p in NON_POW2_RANKS {
        check_against_reference(Algorithm::Auto, p, 1024, 32);
        // A denser workload pushes the selector into the dynamic branch.
        check_against_reference(Algorithm::Auto, p, 512, 200);
    }
}

#[test]
fn fold_unfold_handles_dense_fill_in_at_odd_ranks() {
    // Disjoint per-rank supports covering the whole space force the
    // representation switch mid-collective: the fold/unfold pre/post
    // steps must carry dense streams correctly for every P.
    for p in NON_POW2_RANKS {
        let dim = 768;
        let per = dim / p;
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| {
                let lo = (r * per) as u32;
                let pairs: Vec<(u32, f32)> =
                    (lo..lo + per as u32).map(|i| (i, 1.0 + r as f32)).collect();
                SparseStream::from_pairs(dim, &pairs).unwrap()
            })
            .collect();
        let expect = reference_sum(&ins);
        for algo in [
            Algorithm::SsarRecDbl,
            Algorithm::DenseRecDbl,
            Algorithm::DenseRabenseifner,
        ] {
            let outs = run_communicators(p, CostModel::zero(), |comm| {
                comm.allreduce(&ins[comm.rank()])
                    .algorithm(algo)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap()
            });
            for out in outs {
                for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                    assert!((g - e).abs() < 1e-3, "{algo:?} P={p}: {g} vs {e}");
                }
            }
        }
    }
}

#[test]
fn selector_returns_concrete_algorithms_at_non_power_of_two_ranks() {
    // The selector's analytic costs use ceil(log2 P); it must make a
    // well-defined concrete choice (never Auto) at every odd P across
    // sparsity regimes and networks.
    for p in NON_POW2_RANKS {
        for cost in [
            CostModel::aries(),
            CostModel::infiniband(),
            CostModel::gige(),
        ] {
            for (n, k) in [(1 << 20, 1 << 4), (1 << 20, 1 << 12), (1 << 12, 1 << 10)] {
                let algo = select_algorithm::<f32>(p, n, k, &cost);
                assert!(!algo.is_auto(), "P={p} n={n} k={k}");
                assert!(
                    Algorithm::ALL.contains(&algo),
                    "P={p} n={n} k={k} → {algo:?}"
                );
            }
        }
    }
}

#[test]
fn selector_resolution_is_rank_count_consistent() {
    // resolve_for must be a pure function of (P, N, k, cost): the Auto
    // path resolves identically on every rank once k is agreed, so the
    // cluster cannot diverge into different schedules at odd P.
    for p in NON_POW2_RANKS {
        let cost = CostModel::aries();
        let (n, k) = (1 << 16, 1 << 8);
        let choices: Vec<Algorithm> = (0..p)
            .map(|_| Algorithm::Auto.resolve_for::<f32>(p, n, k, &cost))
            .collect();
        assert!(
            choices.windows(2).all(|w| w[0] == w[1]),
            "P={p}: {choices:?}"
        );
    }
}
