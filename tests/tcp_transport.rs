//! TcpTransport integration suite, part 1: in-process loopback clusters.
//!
//! Every rank is an OS thread, but the messages cross the real TCP stack
//! (rendezvous, full mesh, framed slabs). Two halves:
//!
//! * the **transport-parity matrix** — the same collective programs the
//!   `Endpoint`/`ThreadTransport` suite runs, over TCP, for pow2 and
//!   non-pow2 rank counts;
//! * **socket edge cases** — short reads reassembled into whole frames,
//!   peers closing mid-frame, oversized frame declarations, and malformed
//!   wire-v2 payloads arriving over a real socket.
//!
//! (Part 2, `tcp_multiprocess.rs`, runs ranks as separate OS processes.)

use std::time::Duration;

use sparcml::core::reference::reference_sum;
use sparcml::core::{run_communicators, run_tcp_communicators, Algorithm, Communicator};
use sparcml::net::{
    run_tcp_loopback_cluster, CommError, CostModel, TcpTransport, Transport, TransportConfig,
};
use sparcml::quant::QsgdConfig;
use sparcml::stream::{random_sparse, Scalar, SparseStream, StreamError};

use bytes::Bytes;

fn quick_config() -> TransportConfig {
    TransportConfig::default()
        .with_recv_timeout(Duration::from_secs(20))
        .with_connect_timeout(Duration::from_secs(20))
}

/// Runs one allreduce program over loopback TCP and checks every rank
/// against the sequential reference.
fn check_algo_over_tcp<V: Scalar>(algo: Algorithm, p: usize, dim: usize, nnz: usize, tol: f64) {
    let ins: Vec<SparseStream<V>> = (0..p)
        .map(|r| random_sparse(dim, nnz, 7100 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_tcp_communicators(p, |comm| {
        comm.allreduce(&ins[comm.rank()])
            .algorithm(algo)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    });
    for (rank, out) in outs.iter().enumerate() {
        assert_eq!(out.dim(), dim);
        let got = out.to_dense_vec();
        for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
            assert!(
                (g.to_f64() - e.to_f64()).abs() < tol,
                "{algo:?} on TcpTransport P={p} rank {rank} coord {i}: {g:?} vs {e:?}"
            );
        }
    }
}

#[test]
fn all_algorithms_match_reference_over_tcp() {
    // The parity matrix of the Endpoint/ThreadTransport suite, extended
    // to TCP: pow2 and non-pow2 rank counts.
    for &p in &[3usize, 4, 5, 8] {
        for algo in Algorithm::ALL {
            check_algo_over_tcp::<f32>(algo, p, 2048, 64, 1e-3);
        }
    }
}

#[test]
fn auto_and_f64_match_reference_over_tcp() {
    for &p in &[3usize, 4, 5, 8] {
        check_algo_over_tcp::<f32>(Algorithm::Auto, p, 2048, 96, 1e-3);
    }
    check_algo_over_tcp::<f64>(Algorithm::SsarRecDbl, 5, 1024, 48, 1e-9);
    check_algo_over_tcp::<f64>(Algorithm::Auto, 4, 1024, 48, 1e-9);
}

#[test]
fn auto_k_agreement_with_skewed_nnz_over_tcp() {
    // Ranks contribute *different* nonzero counts: the Auto path must
    // agree on one k over the real wire (a per-rank choice could pick
    // different schedules and deadlock).
    let p = 4;
    let dim = 4096;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 16 + 40 * r, 9900 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_tcp_communicators(p, |comm| {
        comm.allreduce(&ins[comm.rank()])
            .launch()
            .and_then(|h| h.wait())
            .unwrap()
    });
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-3);
        }
    }
}

#[test]
fn allgather_variants_over_tcp() {
    let p = 5;
    let dim = 1024;
    let outs = run_tcp_communicators(p, |comm| {
        let mine = random_sparse::<f32>(dim, 24, 501 + comm.rank() as u64);
        let gathered = comm
            .allgather(&mine)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let summed = comm
            .allgather_sum(&mine)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let block = vec![comm.rank() as f32; 8];
        let dense = comm
            .allgather_dense(&block)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        (gathered, summed, dense)
    });
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 24, 501 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    for (gathered, summed, dense) in outs {
        assert_eq!(gathered.len(), p);
        for (r, s) in gathered.iter().enumerate() {
            assert_eq!(s, &ins[r]);
        }
        for (g, e) in summed.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
        assert_eq!(dense.len(), p);
        for (r, b) in dense.iter().enumerate() {
            assert!(b.iter().all(|&v| v == r as f32));
        }
    }
}

#[test]
fn rooted_collectives_over_tcp() {
    let p = 5;
    let dim = 2048;
    let root = 2;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 48, 61 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_tcp_communicators(p, |comm| {
        let reduced = comm
            .reduce(&ins[comm.rank()], root)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let bcast = comm
            .broadcast(&reduced, root)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let scattered = comm
            .reduce_scatter(&ins[comm.rank()])
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        (bcast, scattered)
    });
    for (rank, (bcast, scattered)) in outs.iter().enumerate() {
        for (g, e) in bcast.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4, "broadcast rank {rank}");
        }
        // The scattered partition must agree with the reference on its
        // support (each rank owns one dimension slice).
        for (i, v) in scattered.to_dense_vec().iter().enumerate() {
            if *v != 0.0 {
                assert!((v - expect[i]).abs() < 1e-4, "reduce_scatter rank {rank}");
            }
        }
    }
}

#[test]
fn quantized_and_nonblocking_over_tcp() {
    // DSAR + QSGD rides the same TCP frames, and a non-blocking launch
    // moves the whole TcpTransport (sockets, I/O threads) onto a helper
    // thread and back.
    let p = 4;
    let dim = 4096;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 256, 881 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let quant = QsgdConfig {
        bits: 8,
        bucket_size: 512,
        ..QsgdConfig::paper_default()
    };
    let outs = run_tcp_communicators(p, |comm| {
        let mut handle = comm
            .allreduce(&ins[comm.rank()])
            .algorithm(Algorithm::DsarSplitAllgather)
            .quantized(quant)
            .nonblocking()
            .launch()
            .unwrap();
        handle.compute(1_000);
        handle.wait().unwrap()
    });
    let max_abs = expect.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() <= max_abs / 127.0 + 1e-3, "{g} vs {e}");
        }
    }
}

#[test]
fn tcp_matches_virtual_time_transport_bitwise_for_integer_values() {
    // Integer-valued inputs make every summation order exact, so the TCP
    // run must agree with the virtual-time Endpoint run bit for bit.
    let p = 4;
    let dim = 1024;
    let mk = |rank: usize| {
        let pairs: Vec<(u32, f32)> = (0..48)
            .map(|i| (((rank * 37 + i * 11) % dim) as u32, 1.0f32))
            .collect();
        SparseStream::from_pairs(dim, &pairs).unwrap()
    };
    for algo in [
        Algorithm::SsarRecDbl,
        Algorithm::SsarSplitAllgather,
        Algorithm::SparseRing,
    ] {
        let virtual_outs = run_communicators(p, CostModel::zero(), |comm| {
            comm.allreduce(&mk(comm.rank()))
                .algorithm(algo)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        let tcp_outs = run_tcp_communicators(p, |comm| {
            comm.allreduce(&mk(comm.rank()))
                .algorithm(algo)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        assert_eq!(virtual_outs, tcp_outs, "{algo:?}");
    }
}

// ---------------------------------------------------------------------------
// Socket edge cases
// ---------------------------------------------------------------------------

/// Data-frame header as the wire defines it: `[len: u32 LE][tag: u64 LE]`.
fn frame_header(len: usize, tag: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(12);
    h.extend_from_slice(&(len as u32).to_le_bytes());
    h.extend_from_slice(&tag.to_le_bytes());
    h
}

#[test]
fn short_reads_reassemble_into_whole_frames() {
    // The payload dribbles in over many small raw writes with pauses; the
    // receiver must reassemble exactly one frame from them.
    let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    let expected = payload.clone();
    let results = run_tcp_loopback_cluster(2, CostModel::zero(), quick_config(), move |tp| {
        if tp.rank() == 1 {
            let mut wire = frame_header(payload.len(), 9);
            wire.extend_from_slice(&payload);
            for chunk in wire.chunks(7) {
                tp.send_raw(0, chunk).unwrap();
                std::thread::sleep(Duration::from_micros(200));
            }
            // Hold the socket open until rank 0 confirms receipt, so the
            // frame cannot be confused with a close-race.
            let _ = tp.recv(0, 10).unwrap();
            Vec::new()
        } else {
            let got = tp.recv(1, 9).unwrap();
            tp.send(1, 10, Bytes::new()).unwrap();
            got.to_vec()
        }
    });
    assert_eq!(results[0], expected);
}

#[test]
fn peer_closing_mid_frame_is_a_typed_disconnect() {
    let results = run_tcp_loopback_cluster(2, CostModel::zero(), quick_config(), |tp| {
        if tp.rank() == 1 {
            // Declare 100 payload bytes, deliver only 10, then vanish.
            let mut wire = frame_header(100, 3);
            wire.extend_from_slice(&[0xAB; 10]);
            tp.send_raw(0, &wire).unwrap();
            (true, String::new())
        } else {
            let err = tp.recv(1, 3).unwrap_err();
            let reason = tp.close_reason(1).unwrap_or("").to_string();
            (
                matches!(err, CommError::PeerDisconnected { peer: 1 }),
                reason,
            )
        }
    });
    let (is_disconnect, reason) = &results[0];
    assert!(is_disconnect, "mid-frame close must be PeerDisconnected");
    assert!(
        reason.contains("mid-frame"),
        "close reason should say mid-frame, got: {reason}"
    );
}

#[test]
fn oversized_frame_declaration_is_rejected() {
    // A corrupt (or hostile) length prefix must not be honored with a
    // giant allocation: the connection is dropped with a typed error.
    let config = quick_config();
    let small = TransportConfig {
        max_frame_len: 1 << 10,
        ..config
    };
    let results = run_tcp_loopback_cluster(2, CostModel::zero(), small, |tp| {
        if tp.rank() == 1 {
            tp.send_raw(0, &frame_header(1 << 20, 4)).unwrap();
            // Our peer will cut the connection; just report success.
            (true, String::new())
        } else {
            let err = tp.recv(1, 4).unwrap_err();
            let reason = tp.close_reason(1).unwrap_or("").to_string();
            (
                matches!(err, CommError::PeerDisconnected { peer: 1 }),
                reason,
            )
        }
    });
    let (is_disconnect, reason) = &results[0];
    assert!(is_disconnect);
    assert!(
        reason.contains("exceeds"),
        "close reason should flag the limit, got: {reason}"
    );
}

#[test]
fn malformed_wire_v2_frames_surface_typed_stream_errors() {
    // Frames arrive intact over TCP but their wire-v2 payload is bad: the
    // existing typed StreamErrors must surface, exactly as in-process.
    let results = run_tcp_loopback_cluster(2, CostModel::zero(), quick_config(), |tp| {
        if tp.rank() == 1 {
            let good = random_sparse::<f32>(256, 16, 42).encode();
            // (a) truncated: drop the tail of a valid frame.
            tp.send(0, 1, good.slice(0..good.len() - 5)).unwrap();
            // (b) unsorted indices: swap the first two u32 entries of the
            // index slab (the sparse header is 20 bytes: magic, version,
            // width, repr tag, dim u64, nnz u64).
            let mut bad = good.to_vec();
            for i in 0..4 {
                bad.swap(20 + i, 24 + i);
            }
            tp.send(0, 2, Bytes::from(bad)).unwrap();
            let _ = tp.recv(0, 3).unwrap();
            (None, None)
        } else {
            let truncated = tp.recv(1, 1).unwrap();
            let e1 = SparseStream::<f32>::decode(&truncated).unwrap_err();
            let unsorted = tp.recv(1, 2).unwrap();
            let e2 = SparseStream::<f32>::decode(&unsorted).unwrap_err();
            tp.send(1, 3, Bytes::new()).unwrap();
            (Some(e1), Some(e2))
        }
    });
    let (e1, e2) = &results[0];
    assert!(
        matches!(e1, Some(StreamError::Truncated { .. })),
        "got {e1:?}"
    );
    assert!(
        matches!(e2, Some(StreamError::UnsortedIndices { .. })),
        "got {e2:?}"
    );
}

#[test]
fn communicator_survives_collective_error_and_reports_it() {
    // A collective over a vanished peer must error (not hang), and the
    // error must be a communication error.
    let config = quick_config().with_recv_timeout(Duration::from_secs(2));
    let results = run_tcp_loopback_cluster(2, CostModel::zero(), config, |tp| {
        if tp.rank() == 1 {
            // Vanish before participating.
            String::new()
        } else {
            let mut comm = Communicator::new(tp.detach());
            let input = random_sparse::<f32>(512, 16, 3);
            let err = comm
                .allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .unwrap_err();
            *tp = comm.into_transport();
            err.to_string()
        }
    });
    assert!(
        results[0].contains("disconnected") || results[0].contains("timed out"),
        "got: {}",
        results[0]
    );
}

#[test]
fn wrong_rank_and_world_fail_rendezvous_from_env_shape() {
    // Sanity on the typed bootstrap errors without any env mutation.
    let err = TcpTransport::rendezvous(
        3,
        2,
        "127.0.0.1:1",
        CostModel::zero(),
        TransportConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, CommError::InvalidRank { rank: 3, size: 2 }));
}
