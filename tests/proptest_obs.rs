//! Property-based tests of the observability primitives: latency
//! histogram algebra (record/merge commutativity, quantile monotonicity,
//! bucket bounds) and the span recorder → Chrome-trace export pipeline
//! (interval nesting survives recording; the exported JSON is
//! structurally valid and complete).
//!
//! Runs on the deterministic in-repo case generator (seeded `XorShift64`)
//! instead of the `proptest` crate — the build environment has no
//! registry access; failures reproduce by construction.

use std::sync::Mutex;

use sparcml::obs::{self, Category, LatencyHisto, Recorder, RecorderConfig, TraceSink};
use sparcml::stream::XorShift64;

const CASES: usize = 48;

/// Latencies spanning sub-microsecond to multi-second, well inside the
/// 40-bucket range so the degenerate top bucket never engages.
fn sample_latencies(rng: &mut XorShift64, max_n: u64) -> Vec<f64> {
    let n = 1 + rng.next_below(max_n) as usize;
    (0..n)
        .map(|_| {
            let exp = rng.next_below(10) as i32 - 7; // 1e-7 .. 1e2 seconds
            let mantissa = 1.0 + rng.next_below(1000) as f64 / 1000.0;
            mantissa * 10f64.powi(exp)
        })
        .collect()
}

#[test]
fn histo_merge_is_commutative_and_matches_bulk_record() {
    let mut rng = XorShift64::new(0xb0b);
    for _ in 0..CASES {
        let samples = sample_latencies(&mut rng, 200);
        let split = rng.next_below(samples.len() as u64) as usize;

        let mut bulk = LatencyHisto::new();
        let mut left = LatencyHisto::new();
        let mut right = LatencyHisto::new();
        for (i, &s) in samples.iter().enumerate() {
            bulk.record(s);
            if i < split {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);

        assert_eq!(lr.buckets(), rl.buckets(), "merge must be commutative");
        assert_eq!(lr.count(), rl.count());
        assert_eq!(lr.buckets(), bulk.buckets(), "merge must equal bulk record");
        assert_eq!(lr.count(), samples.len() as u64);
        assert!((lr.sum_seconds() - bulk.sum_seconds()).abs() < 1e-9);
    }
}

#[test]
fn histo_quantiles_are_monotone_and_bound_the_samples() {
    let mut rng = XorShift64::new(0xcafe);
    for _ in 0..CASES {
        let samples = sample_latencies(&mut rng, 100);
        let mut h = LatencyHisto::new();
        for &s in &samples {
            h.record(s);
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);

        // Monotone in q.
        let mut prev = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q).expect("non-empty histogram");
            assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
        // Each quantile is an upper bound tight to 2x: p100 covers the
        // max sample, p~0 stays within twice the min sample's bucket.
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 >= max * (1.0 - 1e-9), "p100 {p100} < max {max}");
        assert!(
            p100 <= max * 2.0 * (1.0 + 1e-6),
            "p100 {p100} > 2*max {max}"
        );
        let p0 = h.quantile(0.0).unwrap();
        assert!(p0 <= min * 2.0 * (1.0 + 1e-6), "p0 {p0} > 2*min {min}");
    }
}

#[test]
fn histo_bucket_totals_match_count_and_sum() {
    let mut rng = XorShift64::new(0xdead);
    for _ in 0..CASES {
        let samples = sample_latencies(&mut rng, 150);
        let mut h = LatencyHisto::new();
        let mut expect_sum = 0.0;
        for &s in &samples {
            h.record(s);
            expect_sum += s;
        }
        let bucket_total: u64 = h.buckets().iter().sum();
        assert_eq!(bucket_total, samples.len() as u64);
        assert_eq!(h.count(), samples.len() as u64);
        // Sums agree to nanosecond-truncation precision per sample.
        let slack = samples.len() as f64 * 1e-9;
        assert!(
            (h.sum_seconds() - expect_sum).abs() <= slack + expect_sum * 1e-9,
            "sum {} vs {expect_sum}",
            h.sum_seconds()
        );
    }
}

/// The span recorder and trace exporter are process-global; serialize
/// the tests that install one.
fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Emits a random tree of nested spans (depth ≤ 4, fanout ≤ 3) and
/// returns how many were opened.
fn emit_span_tree(rng: &mut XorShift64, depth: usize) -> usize {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let name = NAMES[rng.next_below(NAMES.len() as u64) as usize];
    let _guard = obs::span_with(Category::Phase, name, depth as u64);
    let mut opened = 1;
    if depth < 4 {
        for _ in 0..rng.next_below(3) {
            opened += emit_span_tree(rng, depth + 1);
        }
    }
    opened
}

#[test]
fn recorded_span_intervals_nest_and_export_structurally_valid_json() {
    let _serial = recorder_lock();
    let mut rng = XorShift64::new(0xf00d);
    for _ in 0..8 {
        Recorder::install(RecorderConfig::default());
        let opened = emit_span_tree(&mut rng, 0);
        let threads = Recorder::drain();
        Recorder::uninstall();

        let spans: Vec<_> = threads.iter().flat_map(|t| t.spans.iter()).collect();
        assert_eq!(spans.len(), opened, "every opened span must be drained");

        // Guard drop order means any two spans either nest or are
        // disjoint — never partially overlap.
        for a in &spans {
            for b in &spans {
                let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
                let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
                let nested = (a0 >= b0 && a1 <= b1) || (b0 >= a0 && b1 <= a1);
                let disjoint = a1 <= b0 || b1 <= a0;
                assert!(
                    nested || disjoint,
                    "partially overlapping spans: [{a0},{a1}] vs [{b0},{b1}]"
                );
            }
        }

        // The Chrome export parses and carries one X event per span
        // plus process/thread metadata, all with the required keys.
        let mut out = Vec::new();
        TraceSink::write_chrome_trace(&mut out, 3, "proptest", &threads).unwrap();
        let doc = obs::json::parse(std::str::from_utf8(&out).unwrap()).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), opened);
        for e in &xs {
            assert_eq!(e.get("pid").and_then(|v| v.as_f64()), Some(3.0));
            assert!(e.get("tid").and_then(|v| v.as_f64()).is_some());
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
            assert!(e.get("name").and_then(|v| v.as_str()).is_some());
            assert_eq!(e.get("cat").and_then(|v| v.as_str()), Some("phase"));
        }
        assert!(
            events
                .iter()
                .any(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M")),
            "metadata events present"
        );
    }
}

// ---------------------------------------------------------------------
// Telemetry frame codec (cluster telemetry plane)
// ---------------------------------------------------------------------

use sparcml::obs::{TelemetryError, TelemetryFrame};

/// A random but valid telemetry frame: every field exercised, all
/// vector lengths inside the codec's caps.
fn sample_frame(rng: &mut XorShift64) -> TelemetryFrame {
    use sparcml::obs::telemetry::{DensityStats, HistoDigest, PeerWait};
    const NAMES: [&str; 4] = ["msgs_sent", "bytes_sent", "collectives", "pool_reuses"];
    const ALGOS: [&str; 3] = ["ssar_recdbl", "ring", "dsar"];
    const BACKENDS: [&str; 3] = ["tcp", "reactor", "thread"];
    TelemetryFrame {
        rank: rng.next_below(64) as u32,
        world: 64,
        seq: rng.next_below(1 << 20),
        wall_us: rng.next_below(1 << 50),
        compute_ns: rng.next_below(1 << 40),
        blocked_ns: rng.next_below(1 << 40),
        span_drops: rng.next_below(1 << 16),
        counters: (0..rng.next_below(4))
            .map(|i| (NAMES[i as usize].to_string(), rng.next_below(1 << 30)))
            .collect(),
        peer_waits: (0..rng.next_below(6))
            .map(|i| PeerWait {
                peer: i as u32,
                waits: rng.next_below(1 << 10),
                wait_ns: rng.next_below(1 << 36),
                max_wait_ns: rng.next_below(1 << 30),
                last_arrivals: rng.next_below(1 << 8),
            })
            .collect(),
        density: DensityStats {
            collectives: rng.next_below(1 << 12),
            dim_sum: rng.next_below(1 << 40),
            input_nnz_sum: rng.next_below(1 << 30),
            input_nnz_max: rng.next_below(1 << 20),
            output_nnz_sum: rng.next_below(1 << 32),
            output_nnz_max: rng.next_below(1 << 20),
            dense_results: rng.next_below(1 << 8),
        },
        histos: (0..rng.next_below(3))
            .map(|i| HistoDigest {
                label: ALGOS[i as usize].to_string(),
                backend: BACKENDS[i as usize].to_string(),
                class: rng.next_below(40) as u8,
                count: rng.next_below(1 << 20),
                sum_ns: rng.next_below(1 << 40),
                buckets: (0..rng.next_below(5))
                    .map(|b| (b as u8, 1 + rng.next_below(1 << 16)))
                    .collect(),
            })
            .collect(),
    }
}

#[test]
fn telemetry_frame_binary_codec_round_trips() {
    let mut rng = XorShift64::new(0x7e1e);
    for _ in 0..CASES {
        let frame = sample_frame(&mut rng);
        let wire = frame.encode();
        let back = TelemetryFrame::decode(&wire).expect("round trip");
        assert_eq!(back, frame);
        // JSON path (launcher files) round-trips too.
        let json = frame.to_json().render();
        let parsed = sparcml::obs::json::parse(&json).expect("frame JSON parses");
        assert_eq!(TelemetryFrame::from_json(&parsed), Some(frame));
    }
}

#[test]
fn truncated_frames_fail_typed_never_panic() {
    let mut rng = XorShift64::new(0x74c0de);
    let frame = sample_frame(&mut rng);
    let wire = frame.encode();
    for len in 0..wire.len() {
        match TelemetryFrame::decode(&wire[..len]) {
            Err(TelemetryError::Truncated { .. }) | Err(TelemetryError::BadMagic) => {}
            other => panic!("prefix of {len} bytes: unexpected {other:?}"),
        }
    }
    // Trailing garbage is rejected, not silently ignored.
    let mut long = wire.clone();
    long.extend_from_slice(b"junk");
    assert!(matches!(
        TelemetryFrame::decode(&long),
        Err(TelemetryError::Trailing { .. })
    ));
}

#[test]
fn corrupt_frames_error_or_decode_but_never_panic() {
    let mut rng = XorShift64::new(0xbadc0de);
    for _ in 0..CASES {
        let frame = sample_frame(&mut rng);
        let mut wire = frame.encode();
        // Flip a random byte (possibly in a length field: the caps and
        // bounds checks must catch runaway allocations).
        let at = rng.next_below(wire.len() as u64) as usize;
        wire[at] ^= 1 << rng.next_below(8);
        let _ = TelemetryFrame::decode(&wire); // must return, not panic
    }
}
