//! Progress engine over `Communicator<TcpTransport>` across real OS
//! processes: the multi-process acceptance test for the engine subsystem
//! (fused per-layer gradients over 4 genuinely separate processes on
//! loopback, results element-exact and message counts below the
//! sequential path). Runs in the `tcp-multiprocess` CI job under its
//! hard wall-clock cap.
//!
//! Pattern (see `tests/tcp_multiprocess.rs`): the `job` string passed to
//! the launcher must equal the test function's name; worker processes
//! bail out through the `else { return }` arm.

use std::time::Duration;

use sparcml::core::reference::reference_sum;
use sparcml::core::{Algorithm, Communicator};
use sparcml::engine::{CommunicatorEngineExt, EngineConfig};
use sparcml::net::{run_tcp_cluster, LaunchOptions, Transport};
use sparcml::stream::SparseStream;

const WORLD: usize = 4;
const LAYERS: usize = 16;
const DIM: usize = 2048;
const NNZ: usize = 64;

/// Deterministic integer-valued input for `(rank, layer)` — identical
/// bits under any summation order, so per-process results can be
/// fingerprint-compared across the stdout hop.
fn integer_stream(rank: usize, layer: usize) -> SparseStream<f32> {
    let pairs: Vec<(u32, f32)> = (0..NNZ)
        .map(|i| {
            (
                ((rank * 131 + layer * 37 + i * 17) % DIM) as u32,
                (1 + (rank + layer + i) % 5) as f32,
            )
        })
        .collect();
    SparseStream::from_pairs(DIM, &pairs).unwrap()
}

/// FNV-1a over the dense f32 bit patterns of all layers.
fn fingerprint(layers: &[Vec<f32>]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for dense in layers {
        for v in dense {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    format!("{h:016x}")
}

#[test]
fn engine_fused_collectives_across_processes() {
    let opts = LaunchOptions::for_test().with_timeout(Duration::from_secs(120));
    let Some(results) = run_tcp_cluster(
        "engine_fused_collectives_across_processes",
        WORLD,
        &opts,
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let mut engine = comm.engine::<f32>(EngineConfig {
                algorithm: Algorithm::SsarRecDbl,
                ..EngineConfig::default()
            });
            let grads: Vec<SparseStream<f32>> = (0..LAYERS)
                .map(|l| integer_stream(engine.rank(), l))
                .collect();
            let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
            let tickets = engine.submit_allreduce_group(&refs);
            let dense: Vec<Vec<f32>> = tickets
                .into_iter()
                .map(|t| t.wait().unwrap().to_dense_vec())
                .collect();
            let stats = engine.stats();
            engine.finish_into(&mut comm).unwrap();
            *tp = comm.into_transport();
            format!(
                "{};buckets={};fused={};msgs={}",
                fingerprint(&dense),
                stats.buckets,
                stats.fused_jobs,
                stats.comm.msgs_sent
            )
        },
    ) else {
        return; // worker rank; the parent asserts
    };

    // Reference, computed in the parent: per-layer sums over all ranks.
    let expect: Vec<Vec<f32>> = (0..LAYERS)
        .map(|l| {
            let ins: Vec<SparseStream<f32>> = (0..WORLD).map(|r| integer_stream(r, l)).collect();
            reference_sum(&ins)
        })
        .collect();
    let expect_fp = fingerprint(&expect);

    // Sequential message-count bound for SSAR recursive doubling at a
    // power-of-two P: log2(P) exchange messages per collective per rank.
    let sequential_msgs = LAYERS as u64 * (WORLD as u64).trailing_zeros() as u64;

    for (rank, r) in results.iter().enumerate() {
        let mut parts = r.split(';');
        let fp = parts.next().unwrap();
        assert_eq!(fp, expect_fp, "rank {rank} fused results diverge: {r}");
        let field = |name: &str| -> u64 {
            r.split(';')
                .find_map(|p| p.strip_prefix(&format!("{name}=")))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("missing {name} in {r}"))
        };
        assert_eq!(field("buckets"), 1, "rank {rank}: all layers must fuse");
        assert_eq!(field("fused"), LAYERS as u64);
        assert!(
            field("msgs") < sequential_msgs,
            "rank {rank}: fused path must send fewer messages than {sequential_msgs} ({r})"
        );
    }
}
