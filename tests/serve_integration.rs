//! Multi-process aggregation-service suite: the server (a two-shard
//! group) lives in the parent test process — so its health endpoint and
//! registry stay inspectable — while every client is a real OS process
//! spawned by `sparcml_serve::launcher::run_serve_clients`.
//!
//! The centerpiece is the churn test the service was built around:
//! sixteen concurrent clients against two shards, two of them dying
//! mid-contribution (a half-written frame followed by silence). The
//! fourteen survivors must keep progressing to completion, the watchdog
//! must reap the two corpses, and the health endpoint must say so.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use sparcml::serve::launcher::{in_client_role, run_serve_clients, ClientLaunchOptions};
use sparcml::serve::protocol::{read_frame, Frame};
use sparcml::serve::{AggregationMode, ServeClient, ServeConfig, ShardGroup};
use sparcml::stream::SparseStream;

const DIM: usize = 1000;
const SURVIVOR_ROUNDS: u64 = 50;
const KILLERS: usize = 2;
const CLIENTS: usize = 16;

fn churn_config() -> ServeConfig {
    ServeConfig::default()
        .with_model("grad", DIM, AggregationMode::Sum)
        .with_idle_timeout(Duration::from_millis(500))
}

/// Polls a session's phase until it reaches `want` — phase transitions
/// (BYE processing, watchdog reaps) are asynchronous to client exits.
fn wait_for_phase(handle: &sparcml::serve::ServerHandle, name: &str, want: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.session_phase(name) != Some(want) {
        assert!(
            std::time::Instant::now() < deadline,
            "session {name} never reached phase {want}; stuck at {:?}",
            handle.session_phase(name)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A contribution whose support spans both halves of the index space,
/// varied per client and round so slices are never empty.
fn contribution(client: usize, round: u64) -> SparseStream<f32> {
    let lo = (client as u32 * 7 + round as u32) % (DIM as u32 / 2);
    let hi = DIM as u32 / 2 + (client as u32 * 11 + round as u32) % (DIM as u32 / 2);
    SparseStream::from_pairs(DIM, &[(lo, 1.0), (hi, 2.0)]).unwrap()
}

/// The killer's script: contribute once per shard like a good citizen,
/// then write a *partial* CONTRIBUTE frame to every shard and go silent
/// while still alive — the half-open shape only the idle watchdog can
/// clean up.
fn run_killer(client: usize, addrs: &[std::net::SocketAddr]) -> String {
    let name = format!("client-{client}");
    let mut sockets = Vec::new();
    for addr in addrs {
        let mut socket = TcpStream::connect(addr).unwrap();
        socket.set_nodelay(true).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        Frame::Hello {
            session: name.clone(),
        }
        .encode_into(&mut buf);
        socket.write_all(&buf).unwrap();
        let Frame::Welcome { shard, shards, .. } = read_frame(&mut socket, usize::MAX).unwrap()
        else {
            panic!("killer {client}: expected WELCOME");
        };
        sockets.push((shard, shards, socket));
    }
    // One honest, empty-support contribution per shard (in range
    // everywhere), so the killer dies *mid-stream*, not pre-stream.
    let empty = SparseStream::<f32>::zeros(DIM);
    let mut payload = Vec::new();
    empty.encode_into(&mut payload);
    for (_, _, socket) in &mut sockets {
        let mut buf = Vec::new();
        Frame::Contribute {
            model: 0,
            seq: 1,
            payload: payload.clone(),
        }
        .encode_into(&mut buf);
        socket.write_all(&buf).unwrap();
        loop {
            match read_frame(socket, usize::MAX).unwrap() {
                Frame::Ack { seq: 1, .. } => break,
                Frame::Busy { .. } => panic!("killer {client}: unexpected BUSY"),
                _ => {}
            }
        }
    }
    // Mid-contribution death: a header promising 100 bytes, then 3 of
    // them, then silence with the socket held open.
    for (_, _, socket) in &mut sockets {
        socket.write_all(&[100, 0, 0, 0, 0x02, 1, 2, 3]).unwrap();
    }
    // Outlive the 500 ms watchdog by a wide margin so the reap (timeout)
    // always beats the process-exit EOF.
    std::thread::sleep(Duration::from_secs(3));
    format!("killer-{client} contributed then went dark")
}

fn run_survivor(client: usize, addrs: &[std::net::SocketAddr]) -> String {
    let name = format!("client-{client}");
    let mut session = ServeClient::connect(&name, addrs).unwrap();
    let mut last_generation = 0;
    for round in 0..SURVIVOR_ROUNDS {
        last_generation = session
            .contribute(0, &contribution(client, round), Duration::from_secs(30))
            .unwrap();
    }
    let fetched = session.fetch(0).unwrap();
    session.close();
    format!(
        "survivor-{client} gen={last_generation} fetched_contributions={}",
        fetched.contributions
    )
}

#[test]
fn churn_sixteen_clients_two_shards_two_deaths() {
    // Children re-enter this test; only the parent runs the server.
    let group = if in_client_role() {
        None
    } else {
        Some(ShardGroup::start(churn_config(), 2).unwrap())
    };
    let addrs = group.as_ref().map(|g| g.addrs()).unwrap_or_default();

    let opts = ClientLaunchOptions::for_test().with_timeout(Duration::from_secs(120));
    let Some(outcomes) = run_serve_clients(
        "churn_sixteen_clients_two_shards_two_deaths",
        CLIENTS,
        &addrs,
        &opts,
        |client, addrs| {
            if client < KILLERS {
                run_killer(client, addrs)
            } else {
                run_survivor(client, addrs)
            }
        },
    ) else {
        return;
    };
    let group = group.expect("parent holds the shard group");

    // Every process — killers included — must have finished cleanly: the
    // deaths are server-side events, not client crashes.
    for o in &outcomes {
        assert!(
            o.ok(),
            "client {} failed (exit {:?}, timed_out {}):\nstdout:\n{}\nstderr:\n{}",
            o.client,
            o.exit_code,
            o.timed_out,
            o.stdout,
            o.stderr
        );
    }

    // All sixteen contributed on both shards: 14 survivors × rounds + 2
    // killer singles, in whatever order the batches landed.
    let expect = (CLIENTS - KILLERS) as u64 * SURVIVOR_ROUNDS + KILLERS as u64;
    for (shard, handle) in group.handles().iter().enumerate() {
        assert_eq!(
            handle.model_generation(0),
            Some(expect),
            "shard {shard} generation"
        );
    }

    // The two corpses were reaped (not merely disconnected) on every
    // shard, and the health endpoint names them.
    for handle in group.handles() {
        for killer in 0..KILLERS {
            wait_for_phase(handle, &format!("client-{killer}"), "reaped");
        }
        for survivor in KILLERS..CLIENTS {
            wait_for_phase(handle, &format!("client-{survivor}"), "departed");
        }
        let report = handle.health_report();
        assert!(
            report.contains("reaped_sessions client-0,client-1"),
            "health report must name the reaped sessions:\n{report}"
        );
        assert!(report.contains("sessions_reaped 2"), "{report}");
    }

    // The cluster generation table agrees after a sync.
    group.sync_now().unwrap();
    let report = group.handles()[1].health_report();
    assert!(
        report.contains(&format!("cluster_generations shard=0 [{expect}]")),
        "{report}"
    );
    group.shutdown();
}

#[test]
fn reconnect_resumes_identity_across_processes() {
    let group = if in_client_role() {
        None
    } else {
        Some(ShardGroup::start(churn_config(), 2).unwrap())
    };
    let addrs = group.as_ref().map(|g| g.addrs()).unwrap_or_default();

    let opts = ClientLaunchOptions::for_test().with_timeout(Duration::from_secs(120));
    let Some(outcomes) = run_serve_clients(
        "reconnect_resumes_identity_across_processes",
        1,
        &addrs,
        &opts,
        |_client, addrs| {
            // First incarnation: contribute, then vanish without BYE.
            let mut first = ServeClient::connect("phoenix", addrs).unwrap();
            assert!(!first.resumed());
            let g1 = first
                .contribute(0, &contribution(0, 0), Duration::from_secs(30))
                .unwrap();
            drop(first); // EOF, no BYE

            // Second incarnation, same process, same name: resumed, and
            // the generation carries on from the first life. The server
            // processes the EOF asynchronously, so a too-quick reconnect
            // can race the still-active first life — retry through the
            // typed duplicate-session rejection.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            let mut second = loop {
                match ServeClient::connect("phoenix", addrs) {
                    Ok(c) => break c,
                    Err(e) if e.is_duplicate_session() && std::time::Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => panic!("reconnect failed: {e}"),
                }
            };
            assert!(second.resumed(), "server should resume the session name");
            let g2 = second
                .contribute(0, &contribution(0, 1), Duration::from_secs(30))
                .unwrap();
            assert_eq!(g2, g1 + 1);
            second.close();
            format!("g1={g1} g2={g2}")
        },
    ) else {
        return;
    };
    let group = group.expect("parent holds the shard group");
    assert!(outcomes[0].ok(), "{:?}", outcomes[0]);
    assert_eq!(outcomes[0].result.as_deref(), Some("g1=1 g2=2"));
    for handle in group.handles() {
        assert_eq!(handle.model_generation(0), Some(2));
        // The second life left via BYE.
        wait_for_phase(handle, "phoenix", "departed");
    }
    group.shutdown();
}
