//! Group semantics: `Communicator::split`, subgroup collectives on every
//! transport, nested splits, concurrent sibling groups, hierarchical
//! allreduce exactness, and the inter-node message-count win.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use sparcml::core::reference::reference_sum;
use sparcml::core::{hierarchical_allreduce, ssar_recursive_double, Algorithm, Communicator};
use sparcml::engine::{CommunicatorEngineExt, EngineConfig};
use sparcml::net::{
    run_cluster, run_tcp_loopback_cluster, run_thread_cluster, CommError, CommStats, CostModel,
    Topology, Transport, TransportConfig,
};
use sparcml::stream::{random_sparse, SparseStream, XorShift64};
use sparcml_core::AllreduceConfig;

/// Reference sum over a subset of the cluster's inputs.
fn group_reference(ins: &[SparseStream<f32>], members: &[usize]) -> Vec<f32> {
    let subset: Vec<SparseStream<f32>> = members.iter().map(|&r| ins[r].clone()).collect();
    reference_sum(&subset)
}

/// Integer-valued sparse stream: sums are exact in any association order,
/// so cross-schedule comparisons can assert bitwise equality.
fn integer_stream(rng: &mut XorShift64, dim: usize) -> SparseStream<f32> {
    let nnz = 1 + rng.next_below((dim / 4).max(2) as u64) as usize;
    let pairs: Vec<(u32, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.next_below(dim as u64) as u32,
                (1 + rng.next_below(100)) as f32,
            )
        })
        .collect();
    SparseStream::from_pairs(dim, &pairs).unwrap()
}

// --- split semantics -----------------------------------------------------

#[test]
fn split_runs_full_parity_matrix_inside_subgroups() {
    // P = 7 split by parity: groups {0,2,4,6} (size 4) and {1,3,5}
    // (size 3, non-pow2). Every flat algorithm must reproduce the
    // subgroup reference inside its group.
    let p = 7;
    let dim = 1024;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 48, 9000 + r as u64))
        .collect();
    for algo in Algorithm::ALL {
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            let comm = Communicator::new(ep.detach());
            let world_rank = comm.rank();
            let mut sub = comm.split((world_rank % 2) as u64).unwrap();
            let out = sub
                .allreduce(&ins[world_rank])
                .algorithm(algo)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            let members = sub.transport().members().to_vec();
            *ep = sub.into_parent().into_transport();
            (members, out)
        });
        for (rank, (members, out)) in outs.iter().enumerate() {
            let expect = group_reference(&ins, members);
            assert!(members.contains(&rank));
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "{algo:?} rank {rank}");
            }
        }
    }
}

#[test]
fn split_works_on_thread_transport() {
    let p = 6;
    let dim = 2048;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 64, 9100 + r as u64))
        .collect();
    let outs = run_thread_cluster(p, |tp| {
        let comm = Communicator::new(tp.detach());
        let world_rank = comm.rank();
        let mut sub = comm.split((world_rank % 2) as u64).unwrap();
        let out = sub
            .allreduce(&ins[world_rank])
            .algorithm(Algorithm::SsarSplitAllgather)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let members = sub.transport().members().to_vec();
        *tp = sub.into_parent().into_transport();
        (members, out)
    });
    for (rank, (members, out)) in outs.iter().enumerate() {
        let expect = group_reference(&ins, members);
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4, "rank {rank}");
        }
    }
}

#[test]
fn split_works_on_tcp_transport() {
    let p = 6;
    let dim = 2048;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 64, 9200 + r as u64))
        .collect();
    let outs = run_tcp_loopback_cluster(
        p,
        CostModel::loopback_tcp(),
        TransportConfig::default(),
        |tp| {
            let comm = Communicator::new(tp.detach());
            let world_rank = comm.rank();
            let mut sub = comm.split((world_rank % 2) as u64).unwrap();
            // Auto on a subgroup: the k-agreement and selection run over
            // the group view.
            let out = sub
                .allreduce(&ins[world_rank])
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            let members = sub.transport().members().to_vec();
            *tp = sub.into_parent().into_transport();
            (members, out)
        },
    );
    for (rank, (members, out)) in outs.iter().enumerate() {
        let expect = group_reference(&ins, members);
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4, "rank {rank}");
        }
    }
}

#[test]
fn singleton_groups_collectives_are_local() {
    let p = 4;
    let outs = run_cluster(p, CostModel::zero(), |ep| {
        let comm = Communicator::new(ep.detach());
        let world_rank = comm.rank();
        let input = random_sparse::<f32>(256, 16, 9300 + world_rank as u64);
        let mut sub = comm.split(world_rank as u64).unwrap();
        let out = sub
            .allreduce(&input)
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let size = sub.size();
        *ep = sub.into_parent().into_transport();
        (size, out == input)
    });
    for (size, same) in outs {
        assert_eq!(size, 1);
        assert!(same, "a singleton group's allreduce is the identity");
    }
}

#[test]
fn nested_splits_then_world_collective() {
    // 8 ranks → halves {0..3}, {4..7} → quarters {0,1}, {2,3}, …; run a
    // collective at every level, then dissolve back and verify a flat
    // world collective still matches (op-id counters stayed aligned).
    let p = 8;
    let dim = 512;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 32, 9400 + r as u64))
        .collect();
    let world_expect = reference_sum(&ins);
    let outs = run_cluster(p, CostModel::zero(), |ep| {
        let comm = Communicator::new(ep.detach());
        let world_rank = comm.rank();
        let mut half = comm.split((world_rank / 4) as u64).unwrap();
        let half_out = half
            .allreduce(&ins[world_rank])
            .algorithm(Algorithm::SparseRing)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let half_members: Vec<usize> = half.transport().members().to_vec();
        let mut quarter = half.split((world_rank % 4 / 2) as u64).unwrap();
        let quarter_out = quarter
            .allreduce(&ins[world_rank])
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        // Quarter members are half-group ranks; translate to world ranks.
        let quarter_members: Vec<usize> = quarter
            .transport()
            .members()
            .iter()
            .map(|&g| half_members[g])
            .collect();
        let mut comm = quarter.into_parent().into_parent();
        let world_out = comm
            .allreduce(&ins[world_rank])
            .algorithm(Algorithm::SsarSplitAllgather)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        *ep = comm.into_transport();
        (
            half_members,
            half_out,
            quarter_members,
            quarter_out,
            world_out,
        )
    });
    for (rank, (hm, ho, qm, qo, wo)) in outs.iter().enumerate() {
        for (g, e) in ho.to_dense_vec().iter().zip(group_reference(&ins, hm)) {
            assert!((g - e).abs() < 1e-4, "half group, rank {rank}");
        }
        for (g, e) in qo.to_dense_vec().iter().zip(group_reference(&ins, qm)) {
            assert!((g - e).abs() < 1e-4, "quarter group, rank {rank}");
        }
        for (g, e) in wo.to_dense_vec().iter().zip(world_expect.iter()) {
            assert!((g - e).abs() < 1e-4, "world after nesting, rank {rank}");
        }
    }
}

#[test]
fn concurrent_sibling_groups_do_not_cross_talk() {
    // Real threads: the two sibling groups genuinely run concurrently and
    // issue *different* collective sequences (different counts and kinds),
    // so any tag leakage across groups would mis-match frames or deadlock.
    let p = 8;
    let dim = 1024;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 40, 9500 + r as u64))
        .collect();
    let world_expect = reference_sum(&ins);
    let outs = run_thread_cluster(p, |tp| {
        let comm = Communicator::new(tp.detach());
        let world_rank = comm.rank();
        let color = (world_rank % 2) as u64;
        let mut sub = comm.split(color).unwrap();
        let members = sub.transport().members().to_vec();
        let out = if color == 0 {
            // Group A: three chained allreduces.
            let mut acc = ins[world_rank].clone();
            for algo in [
                Algorithm::SsarRecDbl,
                Algorithm::SparseRing,
                Algorithm::SsarSplitAllgather,
            ] {
                acc = sub
                    .allreduce(&ins[world_rank])
                    .algorithm(algo)
                    .launch()
                    .and_then(|h| h.wait())
                    .unwrap();
            }
            acc
        } else {
            // Group B: reduce → broadcast → one allreduce.
            let reduced = sub
                .reduce(&ins[world_rank], 0)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            let bcast = sub
                .broadcast(&reduced, 0)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            drop(bcast);
            sub.allreduce(&ins[world_rank])
                .algorithm(Algorithm::DenseRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        };
        // Back to the world: a flat collective must still line up.
        let mut comm = sub.into_parent();
        let world_out = comm
            .allreduce(&ins[world_rank])
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        *tp = comm.into_transport();
        (members, out, world_out)
    });
    for (rank, (members, out, world_out)) in outs.iter().enumerate() {
        let expect = group_reference(&ins, members);
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4, "group result, rank {rank}");
        }
        for (g, e) in world_out.to_dense_vec().iter().zip(world_expect.iter()) {
            assert!((g - e).abs() < 1e-4, "world result, rank {rank}");
        }
    }
}

#[test]
fn split_by_topology_groups_by_node() {
    let topo = Topology::from_node_ids(&[1, 0, 1, 0, 1, 1]).unwrap();
    let outs = run_cluster(6, CostModel::zero(), |ep| {
        let comm = Communicator::new(ep.detach());
        let sub = comm.split_by_topology(&topo).unwrap();
        let members = sub.transport().members().to_vec();
        *ep = sub.into_parent().into_transport();
        members
    });
    assert_eq!(outs[1], vec![1, 3]);
    assert_eq!(outs[0], vec![0, 2, 4, 5]);
    assert_eq!(outs[5], vec![0, 2, 4, 5]);
}

// --- hierarchical == flat, randomized ------------------------------------

#[test]
fn hierarchical_is_bitwise_flat_on_integers_across_random_topologies() {
    // Deterministic in-repo proptest (no registry access): random rank
    // counts, node partitions, and integer-valued supports; the two-level
    // schedule must equal the flat reference bit for bit — including
    // trivial topologies, where it degenerates to a flat schedule.
    let mut rng = XorShift64::new(0x70_D0_10);
    for case in 0..20 {
        let p = 2 + rng.next_below(7) as usize;
        let nodes = 1 + rng.next_below(p as u64) as usize;
        let node_of: Vec<usize> = (0..p)
            .map(|r| {
                // Cover every node at least once, then place freely.
                if r < nodes {
                    r
                } else {
                    rng.next_below(nodes as u64) as usize
                }
            })
            .collect();
        let topo = Topology::from_node_ids(&node_of).unwrap();
        let dim = 64 + rng.next_below(448) as usize;
        let ins: Vec<SparseStream<f32>> = (0..p).map(|_| integer_stream(&mut rng, dim)).collect();
        let cfg = AllreduceConfig {
            topology: Some(topo.clone()),
            ..Default::default()
        };
        let hier = run_cluster(p, CostModel::zero(), |ep| {
            hierarchical_allreduce(ep, &ins[ep.rank()], &cfg).unwrap()
        });
        let flat = run_cluster(p, CostModel::zero(), |ep| {
            ssar_recursive_double(ep, &ins[ep.rank()], &AllreduceConfig::default()).unwrap()
        });
        for (rank, (h, f)) in hier.iter().zip(flat.iter()).enumerate() {
            let hd = h.to_dense_vec();
            let fd = f.to_dense_vec();
            for (i, (a, b)) in hd.iter().zip(fd.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "case {case} ({p} ranks, {nodes} nodes, topo {node_of:?}) rank {rank} coord {i}"
                );
            }
        }
    }
}

#[test]
fn hierarchical_through_builder_with_auto_leader() {
    let p = 8;
    let dim = 4096;
    let topo = Topology::uniform(2, 4).unwrap();
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 96, 9600 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_thread_cluster(p, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let out = comm
            .allreduce(&ins[comm.rank()])
            .algorithm(Algorithm::Hierarchical)
            .topology(topo.clone())
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        *tp = comm.into_transport();
        out
    });
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
    }
}

// --- inter-node message counting (the acceptance criterion) ---------------

/// Transport wrapper counting messages that cross node-group boundaries.
/// The counter is shared across `detach()` hand-offs so the hierarchical
/// schedule's internal re-wrapping keeps accumulating into it.
struct InterCounting<T: Transport> {
    inner: T,
    node_of: Vec<usize>,
    inter: Arc<AtomicU64>,
}

impl<T: Transport> InterCounting<T> {
    fn new(inner: T, topo: &Topology) -> Self {
        InterCounting {
            node_of: (0..topo.size()).map(|r| topo.node_of(r)).collect(),
            inner,
            inter: Arc::new(AtomicU64::new(0)),
        }
    }

    fn count(&self, dst: usize) {
        let src = self.inner.rank();
        if src < self.node_of.len()
            && dst < self.node_of.len()
            && self.node_of[src] != self.node_of[dst]
        {
            self.inter.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T: Transport> Transport for InterCounting<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn cost(&self) -> &CostModel {
        self.inner.cost()
    }
    fn clock(&self) -> f64 {
        self.inner.clock()
    }
    fn advance_clock_to(&mut self, t: f64) {
        self.inner.advance_clock_to(t)
    }
    fn charge_seconds(&mut self, seconds: f64) {
        self.inner.charge_seconds(seconds)
    }
    fn compute(&mut self, elements: usize) {
        self.inner.compute(elements)
    }
    fn next_op_id(&mut self) -> u64 {
        self.inner.next_op_id()
    }
    fn stats(&self) -> &CommStats {
        self.inner.stats()
    }
    fn stats_mut(&mut self) -> &mut CommStats {
        self.inner.stats_mut()
    }
    fn reset_clock(&mut self) {
        self.inner.reset_clock()
    }
    fn send(&mut self, dst: usize, tag: u64, payload: Bytes) -> Result<(), CommError> {
        self.count(dst);
        self.inner.send(dst, tag, payload)
    }
    fn isend(&mut self, dst: usize, tag: u64, payload: Bytes) -> Result<(), CommError> {
        self.count(dst);
        self.inner.isend(dst, tag, payload)
    }
    fn recv(&mut self, src: usize, tag: u64) -> Result<Bytes, CommError> {
        self.inner.recv(src, tag)
    }
    fn recv_any(&mut self, tag: u64) -> Result<(usize, Bytes), CommError> {
        self.inner.recv_any(tag)
    }
    fn detach(&mut self) -> Self {
        InterCounting {
            inner: self.inner.detach(),
            node_of: self.node_of.clone(),
            inter: Arc::clone(&self.inter),
        }
    }
}

#[test]
fn hierarchical_sends_fewer_inter_node_messages_than_flat_ssar() {
    // P = 8 on a 2×4 topology. Flat SSAR_Recursive_double crosses the
    // node boundary in its distance-4 round: 1 inter message per rank.
    // The hierarchical schedule's only inter traffic is the two leaders'
    // exchange: ≤ 1 per leader, 0 for everyone else.
    let p = 8;
    let dim = 4096;
    let topo = Topology::uniform(2, 4).unwrap();
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 64, 9700 + r as u64))
        .collect();

    let count_with = |hierarchical: bool| -> Vec<u64> {
        let topo = topo.clone();
        let ins = ins.clone();
        run_cluster(p, CostModel::zero(), move |ep| {
            let mut tp = InterCounting::new(ep.detach(), &topo);
            let counter = Arc::clone(&tp.inter);
            let input = &ins[tp.rank()];
            if hierarchical {
                let cfg = AllreduceConfig {
                    topology: Some(topo.clone()),
                    hier_leader_algorithm: Algorithm::SsarRecDbl,
                    ..Default::default()
                };
                hierarchical_allreduce(&mut tp, input, &cfg).unwrap();
            } else {
                ssar_recursive_double(&mut tp, input, &AllreduceConfig::default()).unwrap();
            }
            *ep = tp.into_parent_endpoint();
            counter.load(Ordering::Relaxed)
        })
    };

    let flat = count_with(false);
    let hier = count_with(true);
    // Flat: every rank crosses the boundary exactly once.
    assert!(flat.iter().all(|&c| c == 1), "flat inter counts: {flat:?}");
    // Hierarchical: leaders (ranks 0 and 4) at most once, others never —
    // strictly fewer inter messages per rank in aggregate and no rank
    // worse than flat.
    for (rank, (&h, &f)) in hier.iter().zip(flat.iter()).enumerate() {
        assert!(h <= f, "rank {rank}: hier {h} > flat {f}");
    }
    assert!(
        hier.iter().sum::<u64>() < flat.iter().sum::<u64>(),
        "hier {hier:?} vs flat {flat:?}"
    );
    assert_eq!(hier.iter().sum::<u64>(), 2, "only the leader exchange");
}

impl InterCounting<sparcml::net::Endpoint> {
    fn into_parent_endpoint(self) -> sparcml::net::Endpoint {
        self.inner
    }
}

// --- engine on a subgroup -------------------------------------------------

#[test]
fn engine_submits_onto_split_communicators() {
    // Each sibling group runs its own progress engine concurrently (real
    // threads); fused group submissions must reduce within the subgroup
    // only, and the world session must still work afterwards.
    let p = 6;
    let dim = 1500;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 50, 9800 + r as u64))
        .collect();
    let world_expect = reference_sum(&ins);
    let outs = run_thread_cluster(p, |tp| {
        let comm = Communicator::new(tp.detach());
        let world_rank = comm.rank();
        let mut sub = comm.split((world_rank % 2) as u64).unwrap();
        let members = sub.transport().members().to_vec();
        let mut engine = sub.engine(EngineConfig::default());
        let t0 = engine.submit_allreduce(&ins[world_rank]);
        let t1 = engine.submit_allreduce(&ins[world_rank]);
        let first = t0.wait().unwrap();
        let second = t1.wait().unwrap();
        engine.finish_into(&mut sub).unwrap();
        let mut comm = sub.into_parent();
        let world_out = comm
            .allreduce(&ins[world_rank])
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        *tp = comm.into_transport();
        (members, first, second, world_out)
    });
    for (rank, (members, first, second, world_out)) in outs.iter().enumerate() {
        let expect = group_reference(&ins, members);
        for out in [first, second] {
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4, "engine result, rank {rank}");
            }
        }
        for (g, e) in world_out.to_dense_vec().iter().zip(world_expect.iter()) {
            assert!((g - e).abs() < 1e-4, "world after engine, rank {rank}");
        }
    }
}

// --- session pool reuse ----------------------------------------------------

#[test]
fn subgroup_collectives_count_in_session_stats() {
    let outs = run_cluster(4, CostModel::zero(), |ep| {
        let comm = Communicator::new(ep.detach());
        let world_rank = comm.rank();
        let input = random_sparse::<f32>(512, 16, 9950 + world_rank as u64);
        let before = comm.stats().collectives;
        let mut sub = comm.split((world_rank % 2) as u64).unwrap();
        sub.allreduce(&input)
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let comm = sub.into_parent();
        let after = comm.stats().collectives;
        *ep = comm.into_transport();
        (before, after)
    });
    for (before, after) in outs {
        // The split's color ring draws one flat op id; the subgroup
        // allreduce must also count, on the shared session counters.
        assert!(
            after >= before + 2,
            "subgroup collective not counted: {before} -> {after}"
        );
    }
}

#[test]
fn auto_rejects_size_mismatched_topology() {
    let topo = Topology::uniform(2, 4).unwrap(); // 8 ranks, cluster has 4
    let outs = run_cluster(4, CostModel::zero(), |ep| {
        let mut comm = Communicator::new(ep.detach());
        let input = random_sparse::<f32>(256, 8, comm.rank() as u64);
        let err = comm
            .allreduce(&input)
            .topology(topo.clone())
            .launch()
            .map(|h| h.wait().map(|_| ()))
            .is_err();
        *ep = comm.into_transport();
        err
    });
    assert!(
        outs.iter().all(|&e| e),
        "Auto must error, not silently run flat"
    );
}

#[test]
fn session_pool_reuse_shows_in_stats_snapshot() {
    let outs = run_cluster(4, CostModel::zero(), |ep| {
        let mut comm = Communicator::new(ep.detach());
        let input = random_sparse::<f32>(2048, 64, 9900 + comm.rank() as u64);
        for _ in 0..6 {
            comm.allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
        }
        let stats = comm.stats_snapshot();
        *ep = comm.into_transport();
        stats
    });
    for stats in outs {
        assert!(stats.pool_acquires > 0);
        assert!(
            stats.reuse_rate() > 0.5,
            "persistent pool should serve most acquisitions after warmup: {:?}",
            stats
        );
    }
}
