//! Property-based tests of the collectives: for randomized sparsity
//! patterns and rank counts, every algorithm must produce the reference
//! sum at every rank, and virtual times must respect basic monotonicity.
//!
//! The build environment has no registry access, so instead of the
//! `proptest` crate these properties run on a deterministic in-repo
//! case generator (seeded `XorShift64`, fixed case counts) — same
//! coverage intent, reproducible failures by construction.

use sparcml::core::reference::reference_sum;
use sparcml::core::{max_communicator_time, run_communicators, Algorithm};
use sparcml::net::CostModel;
use sparcml::stream::{SparseStream, XorShift64};

/// Generates one randomized cluster input: `(dim, per-rank pair lists)`
/// with 2..7 ranks, 32..256 dims, up to dim/2 (index, value) pairs each.
fn cluster_inputs(rng: &mut XorShift64) -> (usize, Vec<Vec<(u32, f32)>>) {
    let p = 2 + rng.next_below(5) as usize;
    let dim = 32 + rng.next_below(224) as usize;
    let per_rank = (0..p)
        .map(|_| {
            let nnz = rng.next_below((dim / 2) as u64) as usize;
            (0..nnz)
                .map(|_| {
                    let idx = rng.next_below(dim as u64) as u32;
                    let val = (rng.next_gaussian() * 5.0) as f32;
                    (idx, val)
                })
                .collect()
        })
        .collect();
    (dim, per_rank)
}

#[test]
fn every_algorithm_matches_reference() {
    let mut rng = XorShift64::new(0xC0FFEE);
    for case in 0..24 {
        let (dim, per_rank) = cluster_inputs(&mut rng);
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        let expect = reference_sum(&ins);
        for algo in Algorithm::ALL {
            let outs = run_communicators(p, CostModel::zero(), |comm| {
                comm.allreduce(&ins[comm.rank()])
                    .algorithm(algo)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap()
            });
            for (rank, out) in outs.iter().enumerate() {
                let got = out.to_dense_vec();
                for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert!(
                        (g - e).abs() <= 1e-2 * (1.0 + e.abs()),
                        "case {case}: {algo:?} rank {rank} coord {i}: {g} vs {e}"
                    );
                }
            }
        }
    }
}

#[test]
fn auto_matches_reference_on_random_workloads() {
    // The Auto default must hold the same property as the pinned
    // schedules, whatever the selector picks per workload.
    let mut rng = XorShift64::new(0xA117_0000);
    for case in 0..24 {
        let (dim, per_rank) = cluster_inputs(&mut rng);
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_communicators(p, CostModel::aries(), |comm| {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|handle| handle.wait())
                .unwrap()
        });
        for (rank, out) in outs.iter().enumerate() {
            let got = out.to_dense_vec();
            for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() <= 1e-2 * (1.0 + e.abs()),
                    "case {case}: Auto rank {rank} coord {i}: {g} vs {e}"
                );
            }
        }
    }
}

#[test]
fn ranks_agree_bitwise() {
    // Whatever fp ordering an algorithm uses, all ranks must hold the
    // *same* result bits.
    let mut rng = XorShift64::new(0xB17_B17);
    for _case in 0..24 {
        let (dim, per_rank) = cluster_inputs(&mut rng);
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        for algo in [
            Algorithm::SsarRecDbl,
            Algorithm::SsarSplitAllgather,
            Algorithm::SparseRing,
        ] {
            let outs = run_communicators(p, CostModel::zero(), |comm| {
                comm.allreduce(&ins[comm.rank()])
                    .algorithm(algo)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap()
                    .to_dense_vec()
            });
            for other in &outs[1..] {
                assert_eq!(other, &outs[0], "{algo:?}");
            }
        }
    }
}

#[test]
fn adaptive_switch_is_bitwise_exact_on_integer_inputs() {
    // Integer-valued f32 sums are exact under any association, so
    // whatever merge order the δ-switch schedule ends up taking — and
    // whichever round it densifies in — its result must equal the
    // reference sum *bitwise* at every rank.
    let mut rng = XorShift64::new(0xAD_A971);
    for p in [3usize, 4, 5, 8] {
        for case in 0..8 {
            let dim = 64 + rng.next_below(448) as usize;
            // Sweep density regimes: sparse inputs never switch, dense
            // ones switch immediately, and the band in between exercises
            // mid-collective switches.
            let max_k = match case % 3 {
                0 => dim / 16,
                1 => dim / 2,
                _ => dim,
            }
            .max(1);
            let ins: Vec<SparseStream<f32>> = (0..p)
                .map(|_| {
                    let nnz = 1 + rng.next_below(max_k as u64) as usize;
                    let pairs: Vec<(u32, f32)> = (0..nnz)
                        .map(|_| {
                            let idx = rng.next_below(dim as u64) as u32;
                            let val = rng.next_below(16) as f32 - 8.0;
                            (idx, val)
                        })
                        .collect();
                    SparseStream::from_pairs(dim, &pairs).unwrap()
                })
                .collect();
            let expect = reference_sum(&ins);
            let outs = run_communicators(p, CostModel::zero(), |comm| {
                comm.allreduce(&ins[comm.rank()])
                    .algorithm(Algorithm::AdaptiveSwitch)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap()
                    .to_dense_vec()
            });
            for (rank, out) in outs.iter().enumerate() {
                for (i, (g, e)) in out.iter().zip(&expect).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        e.to_bits(),
                        "p {p} case {case} rank {rank} coord {i}: {g} vs {e}"
                    );
                }
            }
        }
    }
}

#[test]
fn adaptive_switch_engineered_rounds_are_bitwise_exact() {
    // Three constructions pin *when* the δ-switch fires, checked via the
    // `adaptive_densified` counter: never (tiny inputs), at round 0
    // (inputs already past δ before any exchange), and mid-way (disjoint
    // pair-blocks whose projected union only crosses δ after a round of
    // zero growth followed by a doubling round).
    let check = |p: usize, ins: Vec<SparseStream<f32>>, expect_switch: bool| {
        let expect = reference_sum(&ins);
        let outs = run_communicators(p, CostModel::zero(), |comm| {
            let out = comm
                .allreduce(&ins[comm.rank()])
                .algorithm(Algorithm::AdaptiveSwitch)
                .launch()
                .and_then(|handle| handle.wait())
                .unwrap()
                .to_dense_vec();
            (out, comm.stats_snapshot().adaptive_densified)
        });
        for (rank, (out, densified)) in outs.iter().enumerate() {
            assert_eq!(
                *densified > 0,
                expect_switch,
                "rank {rank}: switch fired = {densified}, expected {expect_switch}"
            );
            for (i, (g, e)) in out.iter().zip(&expect).enumerate() {
                assert_eq!(g.to_bits(), e.to_bits(), "rank {rank} coord {i}");
            }
        }
    };
    // Never: 2 nnz against δ = 2048.
    check(
        8,
        (0..8)
            .map(|_| SparseStream::from_pairs(4096, &[(7, 1.0f32), (9, 2.0)]).unwrap())
            .collect(),
        false,
    );
    // Round 0: 150 nnz per rank against δ = 128 — past δ before any
    // exchange, so the pre-round check densifies immediately.
    check(
        4,
        (0..4)
            .map(|r| {
                let pairs: Vec<(u32, f32)> = (0..150).map(|i| (i, (r + 1) as f32)).collect();
                SparseStream::from_pairs(256, &pairs).unwrap()
            })
            .collect(),
        true,
    );
    // Mid-way: rank pairs (2b, 2b+1) share a disjoint 129-index block,
    // so round 0 merges without union growth; round 1's doubling rate
    // projects 516 > δ = 512 and flips the remaining rounds dense.
    check(
        8,
        (0..8)
            .map(|r| {
                let block = r / 2;
                let pairs: Vec<(u32, f32)> = (block * 129..(block + 1) * 129)
                    .map(|i| (i as u32, 1.0))
                    .collect();
                SparseStream::from_pairs(1024, &pairs).unwrap()
            })
            .collect(),
        true,
    );
}

#[test]
fn virtual_time_monotone_in_message_size() {
    // More data on the same network must not be faster (rec-dbl).
    let n = 1 << 14;
    let mut rng = XorShift64::new(0x515E);
    for _case in 0..8 {
        let k_small = 8 + rng.next_below(56) as usize;
        let scale = 2 + rng.next_below(6) as usize;
        let k_large = k_small * scale;
        let time_for = |k: usize| {
            max_communicator_time(4, CostModel::gige(), move |comm| {
                let input = sparcml::stream::random_sparse::<f32>(n, k, comm.rank() as u64);
                comm.allreduce(&input)
                    .algorithm(Algorithm::SsarRecDbl)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap();
            })
        };
        assert!(
            time_for(k_large) >= time_for(k_small),
            "k {k_small} vs {k_large}"
        );
    }
}

#[test]
fn slower_network_is_never_faster() {
    let n = 1 << 14;
    let mut rng = XorShift64::new(0x4E7);
    for _case in 0..8 {
        let k = 16 + rng.next_below(240) as usize;
        let time_on = |cost: CostModel| {
            max_communicator_time(4, cost, move |comm| {
                let input = sparcml::stream::random_sparse::<f32>(n, k, comm.rank() as u64);
                comm.allreduce(&input)
                    .algorithm(Algorithm::SsarSplitAllgather)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap();
            })
        };
        assert!(
            time_on(CostModel::gige()) >= time_on(CostModel::aries()),
            "k = {k}"
        );
    }
}
