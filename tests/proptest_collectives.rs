//! Property-based tests of the collectives: for arbitrary sparsity
//! patterns and rank counts, every algorithm must produce the reference
//! sum at every rank, and virtual times must respect basic monotonicity.

use proptest::prelude::*;
use sparcml::core::reference::reference_sum;
use sparcml::core::{allreduce, Algorithm, AllreduceConfig};
use sparcml::net::{max_virtual_time, run_cluster, CostModel};
use sparcml::stream::SparseStream;

/// Strategy: P per-rank pair lists over a shared dimension.
fn cluster_inputs() -> impl Strategy<Value = (usize, Vec<Vec<(u32, f32)>>)> {
    (2usize..7, 32usize..256).prop_flat_map(|(p, dim)| {
        let one = proptest::collection::vec((0..dim as u32, -10.0f32..10.0), 0..dim / 2);
        (Just(dim), proptest::collection::vec(one, p))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_algorithm_matches_reference((dim, per_rank) in cluster_inputs()) {
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        let expect = reference_sum(&ins);
        for algo in Algorithm::ALL {
            let outs = run_cluster(p, CostModel::zero(), |ep| {
                allreduce(ep, &ins[ep.rank()], algo, &AllreduceConfig::default()).unwrap()
            });
            for (rank, out) in outs.iter().enumerate() {
                let got = out.to_dense_vec();
                for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                    prop_assert!(
                        (g - e).abs() <= 1e-2 * (1.0 + e.abs()),
                        "{algo:?} rank {rank} coord {i}: {g} vs {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranks_agree_bitwise((dim, per_rank) in cluster_inputs()) {
        // Whatever fp ordering an algorithm uses, all ranks must hold the
        // *same* result bits.
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        for algo in [Algorithm::SsarRecDbl, Algorithm::SsarSplitAllgather, Algorithm::SparseRing] {
            let outs = run_cluster(p, CostModel::zero(), |ep| {
                allreduce(ep, &ins[ep.rank()], algo, &AllreduceConfig::default())
                    .unwrap()
                    .to_dense_vec()
            });
            for other in &outs[1..] {
                prop_assert_eq!(other, &outs[0], "{:?}", algo);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn virtual_time_monotone_in_message_size(k_small in 8usize..64, scale in 2usize..8) {
        // More data on the same network must not be faster (rec-dbl).
        let n = 1 << 14;
        let k_large = k_small * scale;
        let time_for = |k: usize| {
            max_virtual_time(4, CostModel::gige(), move |ep| {
                let input = sparcml::stream::random_sparse::<f32>(n, k, ep.rank() as u64);
                allreduce(ep, &input, Algorithm::SsarRecDbl, &AllreduceConfig::default())
                    .unwrap();
            })
        };
        prop_assert!(time_for(k_large) >= time_for(k_small));
    }

    #[test]
    fn slower_network_is_never_faster(k in 16usize..256) {
        let n = 1 << 14;
        let time_on = |cost: CostModel| {
            max_virtual_time(4, cost, move |ep| {
                let input = sparcml::stream::random_sparse::<f32>(n, k, ep.rank() as u64);
                allreduce(ep, &input, Algorithm::SsarSplitAllgather, &AllreduceConfig::default())
                    .unwrap();
            })
        };
        prop_assert!(time_on(CostModel::gige()) >= time_on(CostModel::aries()));
    }
}
