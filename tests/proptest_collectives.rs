//! Property-based tests of the collectives: for randomized sparsity
//! patterns and rank counts, every algorithm must produce the reference
//! sum at every rank, and virtual times must respect basic monotonicity.
//!
//! The build environment has no registry access, so instead of the
//! `proptest` crate these properties run on a deterministic in-repo
//! case generator (seeded `XorShift64`, fixed case counts) — same
//! coverage intent, reproducible failures by construction.

use sparcml::core::reference::reference_sum;
use sparcml::core::{max_communicator_time, run_communicators, Algorithm};
use sparcml::net::CostModel;
use sparcml::stream::{SparseStream, XorShift64};

/// Generates one randomized cluster input: `(dim, per-rank pair lists)`
/// with 2..7 ranks, 32..256 dims, up to dim/2 (index, value) pairs each.
fn cluster_inputs(rng: &mut XorShift64) -> (usize, Vec<Vec<(u32, f32)>>) {
    let p = 2 + rng.next_below(5) as usize;
    let dim = 32 + rng.next_below(224) as usize;
    let per_rank = (0..p)
        .map(|_| {
            let nnz = rng.next_below((dim / 2) as u64) as usize;
            (0..nnz)
                .map(|_| {
                    let idx = rng.next_below(dim as u64) as u32;
                    let val = (rng.next_gaussian() * 5.0) as f32;
                    (idx, val)
                })
                .collect()
        })
        .collect();
    (dim, per_rank)
}

#[test]
fn every_algorithm_matches_reference() {
    let mut rng = XorShift64::new(0xC0FFEE);
    for case in 0..24 {
        let (dim, per_rank) = cluster_inputs(&mut rng);
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        let expect = reference_sum(&ins);
        for algo in Algorithm::ALL {
            let outs = run_communicators(p, CostModel::zero(), |comm| {
                comm.allreduce(&ins[comm.rank()])
                    .algorithm(algo)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap()
            });
            for (rank, out) in outs.iter().enumerate() {
                let got = out.to_dense_vec();
                for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert!(
                        (g - e).abs() <= 1e-2 * (1.0 + e.abs()),
                        "case {case}: {algo:?} rank {rank} coord {i}: {g} vs {e}"
                    );
                }
            }
        }
    }
}

#[test]
fn auto_matches_reference_on_random_workloads() {
    // The Auto default must hold the same property as the pinned
    // schedules, whatever the selector picks per workload.
    let mut rng = XorShift64::new(0xA117_0000);
    for case in 0..24 {
        let (dim, per_rank) = cluster_inputs(&mut rng);
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        let expect = reference_sum(&ins);
        let outs = run_communicators(p, CostModel::aries(), |comm| {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|handle| handle.wait())
                .unwrap()
        });
        for (rank, out) in outs.iter().enumerate() {
            let got = out.to_dense_vec();
            for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g - e).abs() <= 1e-2 * (1.0 + e.abs()),
                    "case {case}: Auto rank {rank} coord {i}: {g} vs {e}"
                );
            }
        }
    }
}

#[test]
fn ranks_agree_bitwise() {
    // Whatever fp ordering an algorithm uses, all ranks must hold the
    // *same* result bits.
    let mut rng = XorShift64::new(0xB17_B17);
    for _case in 0..24 {
        let (dim, per_rank) = cluster_inputs(&mut rng);
        let p = per_rank.len();
        let ins: Vec<SparseStream<f32>> = per_rank
            .iter()
            .map(|pairs| SparseStream::from_pairs(dim, pairs).unwrap())
            .collect();
        for algo in [
            Algorithm::SsarRecDbl,
            Algorithm::SsarSplitAllgather,
            Algorithm::SparseRing,
        ] {
            let outs = run_communicators(p, CostModel::zero(), |comm| {
                comm.allreduce(&ins[comm.rank()])
                    .algorithm(algo)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap()
                    .to_dense_vec()
            });
            for other in &outs[1..] {
                assert_eq!(other, &outs[0], "{algo:?}");
            }
        }
    }
}

#[test]
fn virtual_time_monotone_in_message_size() {
    // More data on the same network must not be faster (rec-dbl).
    let n = 1 << 14;
    let mut rng = XorShift64::new(0x515E);
    for _case in 0..8 {
        let k_small = 8 + rng.next_below(56) as usize;
        let scale = 2 + rng.next_below(6) as usize;
        let k_large = k_small * scale;
        let time_for = |k: usize| {
            max_communicator_time(4, CostModel::gige(), move |comm| {
                let input = sparcml::stream::random_sparse::<f32>(n, k, comm.rank() as u64);
                comm.allreduce(&input)
                    .algorithm(Algorithm::SsarRecDbl)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap();
            })
        };
        assert!(
            time_for(k_large) >= time_for(k_small),
            "k {k_small} vs {k_large}"
        );
    }
}

#[test]
fn slower_network_is_never_faster() {
    let n = 1 << 14;
    let mut rng = XorShift64::new(0x4E7);
    for _case in 0..8 {
        let k = 16 + rng.next_below(240) as usize;
        let time_on = |cost: CostModel| {
            max_communicator_time(4, cost, move |comm| {
                let input = sparcml::stream::random_sparse::<f32>(n, k, comm.rank() as u64);
                comm.allreduce(&input)
                    .algorithm(Algorithm::SsarSplitAllgather)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap();
            })
        };
        assert!(
            time_on(CostModel::gige()) >= time_on(CostModel::aries()),
            "k = {k}"
        );
    }
}
