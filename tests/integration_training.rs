//! End-to-end training integration tests across crates: MPI-OPT linear
//! models, Top-k/quantized NN training, SCD, and BMUF.

use sparcml::core::Algorithm;
use sparcml::net::CostModel;
use sparcml::opt::data::{
    generate_dense_images_noisy, generate_sequences, generate_sparse, SparseGenConfig,
};
use sparcml::opt::scd::{train_scd, ScdConfig, ScdExchange};
use sparcml::opt::sgd::{train_distributed, SgdConfig};
use sparcml::opt::{
    train_lstm_distributed, train_mlp_distributed, Compression, LrSchedule, NnTrainConfig,
    TopKConfig,
};
use sparcml::quant::QsgdConfig;

fn url_like_small() -> sparcml::opt::data::SparseDataset {
    generate_sparse(&SparseGenConfig {
        dim: 20_000,
        samples: 512,
        nnz_per_sample: 30,
        popularity_exponent: 1.15,
        noise: 0.02,
        seed: 77,
    })
}

#[test]
fn linear_sgd_same_result_for_every_lossless_algorithm() {
    let ds = url_like_small();
    let mut finals: Vec<Vec<f32>> = Vec::new();
    for algo in [
        Algorithm::SsarRecDbl,
        Algorithm::SsarSplitAllgather,
        Algorithm::SparseRing,
        Algorithm::DenseRecDbl,
        Algorithm::DenseRing,
    ] {
        let cfg = SgdConfig {
            epochs: 2,
            batch_per_node: 32,
            algorithm: algo,
            ..Default::default()
        };
        finals.push(train_distributed(&ds, 4, CostModel::zero(), &cfg).weights);
    }
    for other in &finals[1..] {
        for (a, b) in finals[0].iter().zip(other.iter()) {
            assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
    }
}

#[test]
fn linear_sgd_scales_across_node_counts() {
    let ds = url_like_small();
    for p in [1usize, 2, 5, 8] {
        let cfg = SgdConfig {
            epochs: 2,
            batch_per_node: 16,
            ..Default::default()
        };
        let result = train_distributed(&ds, p, CostModel::aries(), &cfg);
        assert!(
            result.epochs.last().unwrap().accuracy > 0.75,
            "P={p}: acc {}",
            result.epochs.last().unwrap().accuracy
        );
    }
}

#[test]
fn nn_quantized_topk_reaches_dense_level_accuracy() {
    // The paper's central ML claim (Fig. 4): Top-k + QSGD recovers the
    // dense baseline's training accuracy.
    let ds = generate_dense_images_noisy(64, 8, 384, 0.6, 13);
    let base = NnTrainConfig {
        epochs: 8,
        lr: LrSchedule::Const(0.2),
        batch_per_node: 12,
        ..Default::default()
    };
    let (_, dense) = train_mlp_distributed(&ds, &[64, 48, 8], 4, CostModel::zero(), &base);
    let quant_cfg = NnTrainConfig {
        compression: Compression::TopKQuant(
            TopKConfig {
                k_per_bucket: 16,
                bucket_size: 512,
            },
            QsgdConfig::with_bits(4),
        ),
        ..base
    };
    let (_, quant) = train_mlp_distributed(&ds, &[64, 48, 8], 4, CostModel::zero(), &quant_cfg);
    let (da, qa) = (
        dense.last().unwrap().accuracy,
        quant.last().unwrap().accuracy,
    );
    assert!(qa > da - 0.1, "quantized {qa} vs dense {da}");
}

#[test]
fn lstm_topk_training_learns_sequences() {
    let ds = generate_sequences(300, 4, 128, 8, 5);
    let cfg = NnTrainConfig {
        epochs: 10,
        lr: LrSchedule::Const(1.0),
        batch_per_node: 8,
        compression: Compression::TopK(TopKConfig {
            k_per_bucket: 64,
            bucket_size: 512,
        }),
        ..Default::default()
    };
    let (_, stats) = train_lstm_distributed(&ds, 8, 16, 2, CostModel::zero(), &cfg);
    assert!(
        stats.last().unwrap().accuracy > 0.5,
        "acc {}",
        stats.last().unwrap().accuracy
    );
    assert!(stats.last().unwrap().loss < stats[0].loss);
}

#[test]
fn scd_sparse_allgather_converges_and_saves_bytes() {
    let ds = url_like_small();
    let cfg = ScdConfig {
        epochs: 2,
        iters_per_epoch: 25,
        exchange: ScdExchange::SparseAllgather,
        ..Default::default()
    };
    let (_, sparse_stats) = train_scd(&ds, 4, CostModel::gige(), &cfg);
    let dense_cfg = ScdConfig {
        exchange: ScdExchange::DenseAllgather,
        ..cfg
    };
    let (_, dense_stats) = train_scd(&ds, 4, CostModel::gige(), &dense_cfg);
    assert!(sparse_stats.last().unwrap().loss < 0.7);
    assert!(sparse_stats[0].bytes_sent < dense_stats[0].bytes_sent / 4);
}

#[test]
fn gige_amplifies_sparse_speedup_over_aries() {
    // §8.2: "the speedups are more significant on less performant cloud
    // networks".
    let ds = url_like_small();
    let speedup_on = |cost: CostModel| {
        let mk = |algo| SgdConfig {
            epochs: 1,
            batch_per_node: 16,
            algorithm: algo,
            ..Default::default()
        };
        let dense = train_distributed(&ds, 4, cost, &mk(Algorithm::DenseRabenseifner));
        let sparse = train_distributed(&ds, 4, cost, &mk(Algorithm::SsarRecDbl));
        dense.epochs[0].comm_time / sparse.epochs[0].comm_time
    };
    let aries = speedup_on(CostModel::aries());
    let gige = speedup_on(CostModel::gige());
    assert!(
        gige > aries,
        "GigE comm speedup {gige} should exceed Aries {aries}"
    );
}

#[test]
fn training_time_includes_comm_and_compute() {
    let ds = url_like_small();
    let cfg = SgdConfig {
        epochs: 1,
        batch_per_node: 32,
        ..Default::default()
    };
    let result = train_distributed(&ds, 4, CostModel::gige(), &cfg);
    let e = &result.epochs[0];
    assert!(e.comm_time > 0.0);
    assert!(e.total_time >= e.comm_time);
    assert!(e.bytes_sent > 0);
}
