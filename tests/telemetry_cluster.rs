//! Cluster telemetry plane, end to end: an injected straggler must be
//! named by `Communicator::cluster_report()` on every rank — in-process
//! over threads and across real OS processes on both socket backends —
//! and the launcher-side telemetry directory must reconstruct the same
//! verdict for the orchestrator (what `sparcml-doctor` ingests).
//!
//! Multi-process pattern as in `tcp_multiprocess.rs`: the `job` string
//! must equal the test function's name, worker processes exit through
//! the `else { return }` arm, and the parent asserts.

use std::time::Duration;

use sparcml::core::{Algorithm, Communicator};
use sparcml::net::{run_socket_cluster, LaunchOptions, Transport, TransportBackend};
use sparcml::obs;
use sparcml::stream::SparseStream;

/// Which rank drags its feet, and by how much per round.
const STRAGGLER: usize = 1;
const DELAY: Duration = Duration::from_millis(25);
const ROUNDS: usize = 4;

fn input_for(rank: usize, dim: usize) -> SparseStream<f32> {
    let pairs: Vec<(u32, f32)> = (0..48)
        .map(|i| (((rank * 131 + i * 17) % dim) as u32, 1.0f32))
        .collect();
    SparseStream::from_pairs(dim, &pairs).unwrap()
}

/// The straggling rank program: `ROUNDS` recursive-doubling allreduces
/// (a fixed algorithm keeps the schedule identical on every backend),
/// with `STRAGGLER` sleeping before each one, then a cluster report.
fn straggle_and_report<T: Transport + Send + 'static>(
    comm: &mut Communicator<T>,
) -> obs::ClusterReport {
    // Enable collection before the measured rounds (the first report
    // would otherwise see only itself).
    let _ = comm.cluster_report().expect("warm-up cluster report");
    let input = input_for(comm.rank(), 4096);
    for _ in 0..ROUNDS {
        if comm.rank() == STRAGGLER {
            std::thread::sleep(DELAY);
        }
        comm.allreduce(&input)
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|h| h.wait())
            .expect("allreduce");
    }
    comm.cluster_report().expect("cluster report")
}

fn assert_names_straggler(report: &obs::ClusterReport, where_: &str) {
    let top = report
        .top_straggler()
        .unwrap_or_else(|| panic!("{where_}: no straggler named:\n{}", report.render_text()));
    assert_eq!(
        top.rank as usize,
        STRAGGLER,
        "{where_}: wrong straggler:\n{}",
        report.render_text()
    );
    // The delay was injected every round; the blame must reflect a
    // majority of it, not a single unlucky wait.
    assert!(
        top.blamed_ns >= DELAY.as_nanos() as u64,
        "{where_}: blame too small ({} ns):\n{}",
        top.blamed_ns,
        report.render_text()
    );
}

#[test]
fn injected_straggler_named_on_thread_cluster() {
    let reports = sparcml::core::run_thread_communicators(4, straggle_and_report);
    for (rank, report) in reports.iter().enumerate() {
        assert_eq!(report.ranks(), vec![0, 1, 2, 3], "rank {rank}");
        assert_names_straggler(report, &format!("rank {rank}"));
    }
}

/// Shared body of the two multi-process variants below.
fn straggler_across_processes(job: &str, backend: TransportBackend) {
    let world = 4;
    let dir = std::env::temp_dir().join(format!("sparcml-{job}"));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = LaunchOptions::for_test()
        .with_timeout(Duration::from_secs(120))
        .with_transport(backend)
        .with_telemetry_dir(&dir);
    let Some(results) = run_socket_cluster(job, world, &opts, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let report = straggle_and_report(&mut comm);
        // Every surviving rank must name the straggler itself — the
        // fingerprint carries its verdict to the parent.
        let top = report.top_straggler().expect("straggler named");
        *tp = comm.into_transport();
        format!("top={}", top.rank)
    }) else {
        return; // worker process
    };
    for (rank, r) in results.iter().enumerate() {
        assert_eq!(r, &format!("top={STRAGGLER}"), "rank {rank} verdict");
    }
    // The launcher exported SPARCML_TELEMETRY; every rank flushed its
    // frame on teardown, so the orchestrator can rebuild the report.
    let report = obs::load_telemetry_dir(&dir, world).expect("load telemetry dir");
    assert_eq!(report.ranks(), vec![0, 1, 2, 3]);
    assert_names_straggler(&report, "orchestrator");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_straggler_named_across_tcp_processes() {
    straggler_across_processes(
        "telemetry_straggler_named_across_tcp_processes",
        TransportBackend::Tcp,
    );
}

#[test]
fn telemetry_straggler_named_across_reactor_processes() {
    straggler_across_processes(
        "telemetry_straggler_named_across_reactor_processes",
        TransportBackend::Reactor,
    );
}

#[test]
fn cluster_report_carries_counters_and_density() {
    let reports = sparcml::core::run_thread_communicators(2, |comm| {
        let _ = comm.cluster_report().expect("warm-up");
        let input = input_for(comm.rank(), 2048);
        for _ in 0..3 {
            comm.allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .expect("allreduce");
        }
        comm.cluster_report().expect("report")
    });
    for report in &reports {
        // Both ranks' transport counters made it into the frames.
        for frame in &report.frames {
            let msgs = frame
                .counters
                .iter()
                .find(|(n, _)| n == "msgs_sent")
                .map(|(_, v)| *v)
                .expect("msgs_sent counter present");
            assert!(msgs > 0, "rank {} sent no messages?", frame.rank);
        }
        // Density was sampled on the measured rounds.
        let density = report.union_density().expect("density sampled");
        assert!(density > 0.0 && density <= 1.0, "density {density}");
        let imb = report.nnz_imbalance().expect("imbalance sampled");
        assert!(imb >= 1.0, "imbalance {imb}");
    }
}
