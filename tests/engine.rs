//! Progress-engine integration suite: concurrent collectives, fusion
//! correctness, tag-block isolation, chunking, and priority scheduling —
//! over the virtual-time, thread, and loopback-TCP transports.

use sparcml::core::reference::reference_sum;
use sparcml::core::{
    run_communicators, run_tcp_communicators, run_thread_communicators, Algorithm, Communicator,
};
use sparcml::engine::{CommunicatorEngineExt, EngineConfig, FusionPolicy};
use sparcml::net::{
    run_tcp_loopback_cluster, run_thread_cluster, CostModel, TagBlock, Transport, TransportConfig,
};
use sparcml::stream::SparseStream;

/// Deterministic integer-valued input for `(rank, layer)`: every
/// summation order produces identical bits, so fused and sequential
/// results can be compared exactly.
fn integer_stream(rank: usize, layer: usize, dim: usize, nnz: usize) -> SparseStream<f32> {
    let pairs: Vec<(u32, f32)> = (0..nnz)
        .map(|i| {
            (
                ((rank * 131 + layer * 37 + i * 17) % dim) as u32,
                (1 + (rank + layer + i) % 5) as f32,
            )
        })
        .collect();
    SparseStream::from_pairs(dim, &pairs).unwrap()
}

fn per_layer_inputs(rank: usize, layers: usize, dim: usize, nnz: usize) -> Vec<SparseStream<f32>> {
    (0..layers)
        .map(|l| integer_stream(rank, l, dim, nnz))
        .collect()
}

/// The sequential reference: per-layer sums over all ranks.
fn layer_references(p: usize, layers: usize, dim: usize, nnz: usize) -> Vec<Vec<f32>> {
    (0..layers)
        .map(|l| {
            let ins: Vec<SparseStream<f32>> =
                (0..p).map(|r| integer_stream(r, l, dim, nnz)).collect();
            reference_sum(&ins)
        })
        .collect()
}

fn fused_engine_config() -> EngineConfig {
    EngineConfig {
        algorithm: Algorithm::SsarRecDbl,
        ..EngineConfig::default()
    }
}

#[test]
fn fused_bucket_equals_sequential_allreduces_exactly() {
    let (p, layers, dim, nnz) = (4, 16, 1024, 48);
    let expect = layer_references(p, layers, dim, nnz);
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        let mut engine = comm.engine::<f32>(fused_engine_config());
        let grads = per_layer_inputs(engine.rank(), layers, dim, nnz);
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let stats = engine.stats();
        engine.finish_into(comm).unwrap();
        (results, stats)
    });
    for (results, stats) in outs {
        assert_eq!(stats.buckets, 1, "all layers must fuse into one bucket");
        assert_eq!(stats.fused_jobs, layers as u64);
        for (l, out) in results.iter().enumerate() {
            assert_eq!(out.dim(), dim);
            assert_eq!(
                out.to_dense_vec(),
                expect[l],
                "fused layer {l} must be element-exact vs the sequential reference"
            );
        }
    }
}

#[test]
fn shared_group_submission_matches_the_borrowed_api_exactly() {
    // `submit_allreduce_group_shared` hands Arc'd gradients to the
    // progress thread without the per-job payload clone; results must
    // be bit-identical to the borrowing API.
    let (p, layers, dim, nnz) = (4, 8, 1024, 48);
    let expect = layer_references(p, layers, dim, nnz);
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        let mut engine = comm.engine::<f32>(fused_engine_config());
        let grads: Vec<std::sync::Arc<SparseStream<f32>>> =
            per_layer_inputs(engine.rank(), layers, dim, nnz)
                .into_iter()
                .map(std::sync::Arc::new)
                .collect();
        let tickets = engine.submit_allreduce_group_shared(&grads);
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        engine.finish_into(comm).unwrap();
        results
    });
    for results in outs {
        for (l, out) in results.iter().enumerate() {
            assert_eq!(
                out.to_dense_vec(),
                expect[l],
                "shared-submission layer {l} must match the sequential reference"
            );
        }
    }
}

#[test]
fn fusion_reduces_messages_and_collectives_at_p4() {
    // The acceptance-shaped claim: 64 layers of k = 1e2 sparse gradients
    // at P = 4 — the engine's fused path completes in fewer transport
    // messages (and fewer collective ops) than 64 sequential allreduces,
    // asserted via the CommStats counters, and the results stay exact.
    let (p, layers, dim, nnz) = (4, 64, 1 << 16, 100);
    let expect = layer_references(p, layers, dim, nnz);

    let sequential = run_thread_communicators(p, |comm| {
        let grads = per_layer_inputs(comm.rank(), layers, dim, nnz);
        let baseline = comm.stats().snapshot();
        let results: Vec<SparseStream<f32>> = grads
            .iter()
            .map(|g| {
                comm.allreduce(g)
                    .algorithm(Algorithm::SsarRecDbl)
                    .launch()
                    .and_then(|h| h.wait())
                    .unwrap()
            })
            .collect();
        let traffic = comm.stats().since(&baseline);
        (results, traffic)
    });

    let fused = run_thread_communicators(p, |comm| {
        let mut engine = comm.engine::<f32>(fused_engine_config());
        let grads = per_layer_inputs(engine.rank(), layers, dim, nnz);
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let traffic = engine.stats().comm.clone();
        engine.finish_into(comm).unwrap();
        (results, traffic)
    });

    for ((seq_results, seq_traffic), (eng_results, eng_traffic)) in
        sequential.iter().zip(fused.iter())
    {
        for (l, (s, e)) in seq_results.iter().zip(eng_results.iter()).enumerate() {
            assert_eq!(
                s.to_dense_vec(),
                e.to_dense_vec(),
                "layer {l} fused result must match the sequential result exactly"
            );
            assert_eq!(s.to_dense_vec(), expect[l]);
        }
        assert!(
            eng_traffic.msgs_sent < seq_traffic.msgs_sent,
            "fusion must reduce messages: engine {} vs sequential {}",
            eng_traffic.msgs_sent,
            seq_traffic.msgs_sent
        );
        assert!(
            eng_traffic.collectives < seq_traffic.collectives,
            "fusion must reduce collective ops: engine {} vs sequential {}",
            eng_traffic.collectives,
            seq_traffic.collectives
        );
    }
}

/// The interleaved-concurrency program: an allreduce and an allgather in
/// flight simultaneously (submitted back to back, waited out of order),
/// executed on distinct tag blocks by the engine. Returns
/// `(allreduce dense, allgather dense per rank)`.
fn interleaved_program<T: Transport + Send + 'static>(
    comm: &mut Communicator<T>,
    dim: usize,
    nnz: usize,
) -> (Vec<f32>, Vec<Vec<f32>>) {
    let mut engine = comm.engine::<f32>(fused_engine_config());
    let rank = engine.rank();
    let ar_input = integer_stream(rank, 0, dim, nnz);
    let ag_input = integer_stream(rank, 1, dim, nnz);
    let ar_ticket = engine.submit_allreduce(&ar_input);
    let ag_ticket = engine.submit_allgather(&ag_input);
    // Both are now in flight; resolve them in the opposite order.
    let gathered = ag_ticket.wait().unwrap();
    let reduced = ar_ticket.wait().unwrap();
    engine.finish_into(comm).unwrap();
    (
        reduced.to_dense_vec(),
        gathered.iter().map(|s| s.to_dense_vec()).collect(),
    )
}

fn check_interleaved(outs: Vec<(Vec<f32>, Vec<Vec<f32>>)>, p: usize, dim: usize, nnz: usize) {
    let ar_expect = reference_sum(
        &(0..p)
            .map(|r| integer_stream(r, 0, dim, nnz))
            .collect::<Vec<_>>(),
    );
    for (reduced, gathered) in outs {
        assert_eq!(reduced, ar_expect, "allreduce result must be bitwise-exact");
        assert_eq!(gathered.len(), p);
        for (r, g) in gathered.iter().enumerate() {
            assert_eq!(
                g,
                &integer_stream(r, 1, dim, nnz).to_dense_vec(),
                "allgather block of rank {r} must be bitwise-exact"
            );
        }
    }
}

#[test]
fn interleaved_allreduce_allgather_over_thread_transport() {
    let (p, dim, nnz) = (4, 2048, 64);
    let outs = run_thread_communicators(p, |comm| interleaved_program(comm, dim, nnz));
    check_interleaved(outs, p, dim, nnz);
}

#[test]
fn interleaved_allreduce_allgather_over_tcp_transport() {
    let (p, dim, nnz) = (4, 2048, 64);
    let outs = run_tcp_communicators(p, |comm| interleaved_program(comm, dim, nnz));
    check_interleaved(outs, p, dim, nnz);
}

/// Raw tag-block isolation: frames under distinct blocks (same peer, same
/// sub-tag) match independently of arrival order.
fn tag_block_isolation_program<T: Transport>(tp: &mut T) -> bool {
    let block_a = TagBlock::control(1);
    let block_b = TagBlock::control(2);
    assert_ne!(block_a.tag(5), block_b.tag(5));
    if tp.rank() == 0 {
        // Send B's frame first; the peer asks for A's first.
        tp.send(1, block_b.tag(5), bytes::Bytes::from_static(b"bee"))
            .unwrap();
        tp.send(1, block_a.tag(5), bytes::Bytes::from_static(b"ay"))
            .unwrap();
        true
    } else if tp.rank() == 1 {
        let a = tp.recv(0, block_a.tag(5)).unwrap();
        let b = tp.recv(0, block_b.tag(5)).unwrap();
        a.as_ref() == b"ay" && b.as_ref() == b"bee"
    } else {
        true
    }
}

#[test]
fn tag_blocks_isolate_traffic_on_thread_transport() {
    let oks = run_thread_cluster(2, tag_block_isolation_program);
    assert!(oks.iter().all(|&ok| ok));
}

#[test]
fn tag_blocks_isolate_traffic_on_tcp_transport() {
    let oks = run_tcp_loopback_cluster(
        2,
        CostModel::loopback_tcp(),
        TransportConfig::default(),
        tag_block_isolation_program,
    );
    assert!(oks.iter().all(|&ok| ok));
}

#[test]
fn chunked_pipelining_stays_exact() {
    // Force chunking: a fused bucket of 8 × 4096 = 32768 indices with a
    // 1024-index chunk cap → 32 chunks, still element-exact.
    let (p, layers, dim, nnz) = (3, 8, 4096, 32);
    let expect = layer_references(p, layers, dim, nnz);
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        let cfg = EngineConfig {
            algorithm: Algorithm::SsarRecDbl,
            fusion: FusionPolicy {
                max_chunk_elements: 1024,
                ..FusionPolicy::default()
            },
            ..EngineConfig::default()
        };
        let mut engine = comm.engine::<f32>(cfg);
        let grads = per_layer_inputs(engine.rank(), layers, dim, nnz);
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let stats = engine.stats();
        engine.finish_into(comm).unwrap();
        (results, stats)
    });
    for (results, stats) in outs {
        assert_eq!(stats.chunked_buckets, 1);
        assert_eq!(stats.chunks, (layers * dim / 1024) as u64);
        for (l, out) in results.iter().enumerate() {
            assert_eq!(out.to_dense_vec(), expect[l], "chunked layer {l}");
        }
    }
}

#[test]
fn priority_order_is_lifo_and_identical_across_ranks() {
    let p = 2;
    let orders = run_thread_communicators(p, |comm| {
        let cfg = EngineConfig {
            algorithm: Algorithm::SsarRecDbl,
            fusion: FusionPolicy::disabled(),
            priority_lifo: true,
            ..EngineConfig::default()
        };
        let mut engine = comm.engine::<f32>(cfg);
        let grads = per_layer_inputs(engine.rank(), 4, 256, 16);
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        for t in tickets {
            t.wait().unwrap();
        }
        let order = engine.stats().execution_order.clone();
        engine.finish_into(comm).unwrap();
        order
    });
    assert_eq!(orders[0], vec![3, 2, 1, 0], "buckets execute LIFO");
    assert_eq!(orders[0], orders[1], "schedule must be rank-invariant");
}

#[test]
fn submission_order_mode_preserves_fifo() {
    let outs = run_communicators(1, CostModel::zero(), |comm| {
        let cfg = EngineConfig {
            fusion: FusionPolicy::disabled(),
            priority_lifo: false,
            ..EngineConfig::default()
        };
        let mut engine = comm.engine::<f32>(cfg);
        let grads = per_layer_inputs(0, 3, 128, 8);
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        for t in tickets {
            t.wait().unwrap();
        }
        let order = engine.stats().execution_order.clone();
        engine.finish_into(comm).unwrap();
        order
    });
    assert_eq!(outs[0], vec![0, 1, 2]);
}

#[test]
fn density_guard_splits_dense_batch_and_stays_exact() {
    // The k = 1e4 regime from BENCH_engine.json: with the default
    // `max_density = 0.5` and the conservative fill prior P, two of
    // these jobs project 4·20_000/131_072 ≈ 0.61 fused — bandwidth-bound
    // — so the density guard must keep every job a singleton bucket, and
    // the results must stay element-exact.
    let (p, layers, dim, nnz) = (4, 4, 1 << 16, 10_000);
    let expect = layer_references(p, layers, dim, nnz);
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        let mut engine = comm.engine::<f32>(fused_engine_config());
        let grads = per_layer_inputs(engine.rank(), layers, dim, nnz);
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let stats = engine.stats();
        engine.finish_into(comm).unwrap();
        (results, stats)
    });
    for (results, stats) in outs {
        assert_eq!(
            stats.buckets, layers as u64,
            "density guard must split the dense batch into singletons"
        );
        assert_eq!(stats.fused_jobs, 0);
        for (l, out) in results.iter().enumerate() {
            assert_eq!(out.to_dense_vec(), expect[l], "split layer {l}");
        }
    }
}

#[test]
fn density_guard_preserves_sparse_runs_in_mixed_batches() {
    // Mixed batch [s, s, d, d, s, s]: the sparse runs keep fusing, the
    // dense middle is cut into singletons, and every layer stays
    // element-exact across the split/fused boundary.
    let (p, dim) = (4, 1 << 16);
    let nnz_of = |l: usize| if (2..4).contains(&l) { 30_000 } else { 100 };
    let layer_input = |rank: usize, l: usize| integer_stream(rank, l, dim, nnz_of(l));
    let expect: Vec<Vec<f32>> = (0..6)
        .map(|l| {
            let ins: Vec<SparseStream<f32>> = (0..p).map(|r| layer_input(r, l)).collect();
            reference_sum(&ins)
        })
        .collect();
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        let mut engine = comm.engine::<f32>(fused_engine_config());
        let grads: Vec<SparseStream<f32>> = (0..6).map(|l| layer_input(engine.rank(), l)).collect();
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let stats = engine.stats();
        engine.finish_into(comm).unwrap();
        (results, stats)
    });
    for (results, stats) in outs {
        // [[0,1],[2],[3],[4,5]] — the tail sparse pair still fuses.
        assert_eq!(
            stats.buckets, 4,
            "dense middle must split, sparse runs must fuse"
        );
        assert_eq!(stats.fused_jobs, 4);
        for (l, out) in results.iter().enumerate() {
            assert_eq!(out.to_dense_vec(), expect[l], "mixed layer {l}");
        }
    }
}

#[test]
fn many_individual_submissions_stay_correct_under_load() {
    // Individual (non-group) submissions with tickets waited only at the
    // end: batching is timing-dependent, correctness must not be.
    let (p, jobs, dim, nnz) = (4, 40, 512, 24);
    let expect = layer_references(p, jobs, dim, nnz);
    let outs = run_thread_communicators(p, |comm| {
        let mut engine = comm.engine::<f32>(fused_engine_config());
        let grads = per_layer_inputs(engine.rank(), jobs, dim, nnz);
        let tickets: Vec<_> = grads.iter().map(|g| engine.submit_allreduce(g)).collect();
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        engine.finish_into(comm).unwrap();
        results
    });
    for results in outs {
        for (l, out) in results.iter().enumerate() {
            assert_eq!(out.to_dense_vec(), expect[l], "job {l}");
        }
    }
}
