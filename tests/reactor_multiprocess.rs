//! ReactorTransport integration suite, part 2: real OS processes.
//!
//! The same launcher harness as `tcp_multiprocess.rs`, but each child
//! bootstraps through [`sparcml::net::SocketTransport::from_env`] with
//! `SPARCML_TRANSPORT=reactor` exported by
//! `LaunchOptions::with_transport` — so this suite is also the
//! end-to-end test of the env-driven backend selection: the parent picks
//! the backend once, and every rank's mesh comes up on the single
//! event-loop-per-rank transport.
//!
//! Pattern (same as the TCP suite): the `job` string must equal the test
//! function's name, and worker processes bail out through the
//! `else { return }` arm (the parent does the asserting).

use std::time::Duration;

use sparcml::core::reference::reference_sum;
use sparcml::core::{Algorithm, Communicator};
use sparcml::net::{
    run_socket_cluster, run_socket_cluster_outcomes, LaunchOptions, Transport, TransportBackend,
};
use sparcml::stream::SparseStream;

/// Deterministic integer-valued input for `rank`: every summation order
/// produces identical bits, so ranks and the sequential reference can be
/// compared exactly, even across processes.
fn integer_stream(rank: usize, dim: usize, nnz: usize) -> SparseStream<f32> {
    let pairs: Vec<(u32, f32)> = (0..nnz)
        .map(|i| (((rank * 131 + i * 17) % dim) as u32, 1.0f32))
        .collect();
    SparseStream::from_pairs(dim, &pairs).unwrap()
}

/// FNV-1a over the dense f32 bit pattern — a compact result fingerprint
/// that survives the stdout hop between processes.
fn fingerprint(dense: &[f32]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in dense {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

fn opts() -> LaunchOptions {
    LaunchOptions::for_test()
        .with_timeout(Duration::from_secs(120))
        .with_transport(TransportBackend::Reactor)
}

#[test]
fn reactor_all_allreduce_algorithms_across_processes() {
    let world = 4;
    let dim = 2048;
    let nnz = 96;
    let Some(results) = run_socket_cluster(
        "reactor_all_allreduce_algorithms_across_processes",
        world,
        &opts(),
        |tp| {
            // The env round-trip is part of the test: the child must have
            // come up on the reactor, not the thread-per-peer default.
            assert_eq!(tp.backend(), TransportBackend::Reactor);
            let mut comm = Communicator::new(tp.detach());
            let input = integer_stream(comm.rank(), dim, nnz);
            let mut parts = Vec::new();
            for algo in Algorithm::ALL {
                let out = comm
                    .allreduce(&input)
                    .algorithm(algo)
                    .launch()
                    .and_then(|h| h.wait())
                    .unwrap();
                parts.push(format!(
                    "{}={}",
                    algo.name(),
                    fingerprint(&out.to_dense_vec())
                ));
            }
            *tp = comm.into_transport();
            parts.join(";")
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, nnz)).collect();
    let expect = fingerprint(&reference_sum(&ins));
    let expected_line = Algorithm::ALL
        .iter()
        .map(|a| format!("{}={}", a.name(), expect))
        .collect::<Vec<_>>()
        .join(";");
    for (rank, line) in results.iter().enumerate() {
        assert_eq!(line, &expected_line, "rank {rank} disagrees");
    }
}

#[test]
fn reactor_allgather_rooted_and_nonblocking_across_processes() {
    // Non-pow2 world exercises the fold/ring paths; the non-blocking
    // launch moves the whole SocketTransport (loop thread included) onto
    // a helper thread and back — across real processes.
    let world = 5;
    let dim = 1024;
    let Some(results) = run_socket_cluster(
        "reactor_allgather_rooted_and_nonblocking_across_processes",
        world,
        &opts(),
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let rank = comm.rank();
            let ins: Vec<SparseStream<f32>> =
                (0..world).map(|r| integer_stream(r, dim, 40)).collect();
            let expect = reference_sum(&ins);

            let gathered = comm
                .allgather(&ins[rank])
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            assert_eq!(gathered.len(), world);
            for (r, s) in gathered.iter().enumerate() {
                assert_eq!(s, &ins[r], "allgather rank {rank} slot {r}");
            }

            let reduced = comm
                .reduce(&ins[rank], 1)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            let bcast = comm
                .broadcast(&reduced, 1)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            assert_eq!(bcast.to_dense_vec(), expect, "broadcast rank {rank}");

            let mut handle = comm
                .allreduce(&ins[rank])
                .algorithm(Algorithm::SsarSplitAllgather)
                .nonblocking()
                .launch()
                .unwrap();
            handle.compute(10_000); // overlapped local work
            let overlapped = handle.wait().unwrap();
            assert_eq!(overlapped.to_dense_vec(), expect, "nonblocking rank {rank}");

            *tp = comm.into_transport();
            fingerprint(&bcast.to_dense_vec())
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, 40)).collect();
    let expect = fingerprint(&reference_sum(&ins));
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(got, &expect, "rank {rank}");
    }
}

#[test]
fn reactor_killed_peer_fails_survivors_within_timeout() {
    // Rank 2 dies right after the mesh is up; the event loop must turn
    // the dead socket into typed failures on every survivor — never hang.
    let world = 4;
    let opts = LaunchOptions::for_test()
        .with_timeout(Duration::from_secs(60))
        .with_recv_timeout(Duration::from_secs(3))
        .with_transport(TransportBackend::Reactor);
    let started = std::time::Instant::now();
    let Some(outcomes) = run_socket_cluster_outcomes(
        "reactor_killed_peer_fails_survivors_within_timeout",
        world,
        &opts,
        |tp| {
            if tp.rank() == 2 {
                // Simulate a killed peer: vanish without any goodbye.
                std::process::exit(7);
            }
            let mut comm = Communicator::new(tp.detach());
            let input = integer_stream(comm.rank(), 1024, 32);
            let res = comm
                .allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait());
            *tp = comm.into_transport();
            match res {
                Ok(_) => "completed".to_string(),
                Err(e) => format!("errored: {e}"),
            }
        },
    ) else {
        return;
    };
    assert!(
        started.elapsed() < Duration::from_secs(45),
        "survivors took too long: {:?}",
        started.elapsed()
    );
    for o in &outcomes {
        assert!(!o.timed_out, "rank {} hit the hard deadline", o.rank);
        if o.rank == 2 {
            assert_eq!(o.exit_code, Some(7), "the dead rank must exit with 7");
        } else {
            assert_eq!(
                o.exit_code,
                Some(0),
                "rank {} stderr:\n{}",
                o.rank,
                o.stderr
            );
            let result = o.result.as_deref().unwrap_or("");
            assert!(
                result.starts_with("errored"),
                "rank {} must observe the dead peer, got: {result}",
                o.rank
            );
        }
    }
}

#[test]
fn reactor_engine_density_guard_splits_buckets_across_processes() {
    // Same k = 1e4 fusion-loss shape as the TCP suite, on the event-loop
    // backend: the density guard must keep the four dense jobs singleton
    // buckets (previously one bandwidth-bound fused bucket) with exact
    // results.
    use sparcml::engine::{CommunicatorEngineExt, EngineConfig};

    let world = 4;
    let layers = 4;
    let dim = 1 << 16;
    let nnz = 10_000;
    let Some(results) = run_socket_cluster(
        "reactor_engine_density_guard_splits_buckets_across_processes",
        world,
        &opts(),
        |tp| {
            assert_eq!(tp.backend(), TransportBackend::Reactor);
            let mut comm = Communicator::new(tp.detach());
            let mut engine = comm.engine::<f32>(EngineConfig {
                algorithm: Algorithm::SsarRecDbl,
                ..EngineConfig::default()
            });
            let grads: Vec<SparseStream<f32>> = (0..layers)
                .map(|l| integer_stream(engine.rank() * 7 + l, dim, nnz))
                .collect();
            let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
            let tickets = engine.submit_allreduce_group(&refs);
            let fps: Vec<String> = tickets
                .into_iter()
                .map(|t| fingerprint(&t.wait().unwrap().to_dense_vec()))
                .collect();
            let stats = engine.stats();
            engine.finish_into(&mut comm).unwrap();
            *tp = comm.into_transport();
            format!(
                "{};buckets={};fused={}",
                fps.join(":"),
                stats.buckets,
                stats.fused_jobs
            )
        },
    ) else {
        return;
    };
    let expect: Vec<String> = (0..layers)
        .map(|l| {
            let ins: Vec<SparseStream<f32>> = (0..world)
                .map(|r| integer_stream(r * 7 + l, dim, nnz))
                .collect();
            fingerprint(&reference_sum(&ins))
        })
        .collect();
    let expected_line = format!("{};buckets={layers};fused=0", expect.join(":"));
    for (rank, line) in results.iter().enumerate() {
        assert_eq!(
            line, &expected_line,
            "rank {rank}: the k=1e4 shape must not fuse into one bucket"
        );
    }
}

#[test]
fn reactor_hierarchical_2x4_with_engine_on_subgroup_across_processes() {
    // The full composition on the event-loop backend: 8 processes, a 2×4
    // env-derived topology, hierarchical allreduce, split subgroups with
    // a progress engine each, then a flat collective — everything over
    // one reactor thread per rank.
    use sparcml::engine::{CommunicatorEngineExt, EngineConfig};
    use sparcml::net::Topology;

    let world = 8;
    let dim = 4096;
    let nnz = 128;
    let topo = Topology::uniform(2, 4).unwrap();
    let opts = LaunchOptions::for_test()
        .with_timeout(Duration::from_secs(120))
        .with_topology(topo.clone())
        .with_transport(TransportBackend::Reactor);
    let Some(results) = run_socket_cluster(
        "reactor_hierarchical_2x4_with_engine_on_subgroup_across_processes",
        world,
        &opts,
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let rank = comm.rank();
            let input = integer_stream(rank, dim, nnz);

            let hier = comm
                .allreduce(&input)
                .algorithm(Algorithm::Hierarchical)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();

            let env_topo = Topology::from_env(world)
                .expect("launcher exports a valid topology")
                .expect("SPARCML_NODES must be set for this job");
            let mut sub = comm.split_by_topology(&env_topo).unwrap();
            let members = sub.transport().members().to_vec();
            let mut engine = sub.engine(EngineConfig::default());
            let t0 = engine.submit_allreduce(&input);
            let t1 = engine.submit_allreduce(&input);
            let sub_first = t0.wait().unwrap();
            let sub_second = t1.wait().unwrap();
            engine.finish_into(&mut sub).unwrap();
            let mut comm = sub.into_parent();

            let flat = comm
                .allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            *tp = comm.into_transport();
            format!(
                "node{:?}|hier={}|sub={}:{}|flat={}",
                members,
                fingerprint(&hier.to_dense_vec()),
                fingerprint(&sub_first.to_dense_vec()),
                fingerprint(&sub_second.to_dense_vec()),
                fingerprint(&flat.to_dense_vec()),
            )
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, nnz)).collect();
    let world_fp = fingerprint(&reference_sum(&ins));
    for (rank, line) in results.iter().enumerate() {
        let members = topo.group_of(rank);
        let sub_ins: Vec<SparseStream<f32>> = members.iter().map(|&r| ins[r].clone()).collect();
        let sub_fp = fingerprint(&reference_sum(&sub_ins));
        let expect = format!(
            "node{:?}|hier={world_fp}|sub={sub_fp}:{sub_fp}|flat={world_fp}",
            members
        );
        assert_eq!(line, &expect, "rank {rank}");
    }
}
