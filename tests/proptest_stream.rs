//! Property-based tests of the sparse stream core invariants.

use proptest::prelude::*;
use sparcml::quant::{dequantize, quantize, NormKind, QsgdConfig};
use sparcml::stream::{DensityPolicy, SparseStream, XorShift64};

/// Strategy: a dimension plus a set of in-range (index, value) pairs.
fn stream_inputs() -> impl Strategy<Value = (usize, Vec<(u32, f32)>)> {
    (16usize..512).prop_flat_map(|dim| {
        let pairs = proptest::collection::vec(
            (0..dim as u32, -100.0f32..100.0),
            0..(dim / 2).max(1),
        );
        (Just(dim), pairs)
    })
}

proptest! {
    #[test]
    fn from_pairs_preserves_logical_vector((dim, pairs) in stream_inputs()) {
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        s.check_invariants().unwrap();
        let mut expect = vec![0.0f32; dim];
        for &(i, v) in &pairs {
            expect[i as usize] += v;
        }
        let got = s.to_dense_vec();
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() <= 1e-3 * (1.0 + e.abs()));
        }
    }

    #[test]
    fn sum_matches_dense_reference(
        (dim, a) in stream_inputs(),
        b_seed in 0u64..1000,
        densify_a in any::<bool>(),
        densify_b in any::<bool>(),
    ) {
        let mut sa = SparseStream::from_pairs(dim, &a).unwrap();
        let mut sb = sparcml::stream::random_sparse::<f32>(dim, (dim / 4).max(1), b_seed);
        if densify_a { sa.densify(); }
        if densify_b { sb.densify(); }
        let mut expect = sa.to_dense_vec();
        for (i, v) in sb.iter_nonzero() {
            expect[i as usize] += v;
        }
        sa.add_assign(&sb).unwrap();
        let got = sa.to_dense_vec();
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() <= 1e-3 * (1.0 + e.abs()), "{g} vs {e}");
        }
    }

    #[test]
    fn sum_switches_repr_only_past_delta((dim, a) in stream_inputs(), b_seed in 0u64..1000) {
        let mut sa = SparseStream::from_pairs(dim, &a).unwrap();
        let sb = sparcml::stream::random_sparse::<f32>(dim, (dim / 8).max(1), b_seed);
        let policy = DensityPolicy::default();
        let pre_len = sa.stored_len() + sb.stored_len();
        let stats = sa.add_assign_with(&sb, &policy).unwrap();
        let delta = policy.delta::<f32>(dim);
        if stats.switched_to_dense {
            prop_assert!(pre_len > delta);
        } else if sa.is_sparse() {
            prop_assert!(pre_len <= delta);
        }
    }

    #[test]
    fn encode_decode_round_trip((dim, pairs) in stream_inputs(), dense in any::<bool>()) {
        let mut s = SparseStream::from_pairs(dim, &pairs).unwrap();
        if dense { s.densify(); }
        let bytes = s.encode();
        prop_assert_eq!(bytes.len(), s.encoded_len());
        let back = SparseStream::<f32>::decode(&bytes).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn restrict_partition_concat_is_identity((dim, pairs) in stream_inputs(), parts in 1usize..8) {
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let restricted: Vec<SparseStream<f32>> = (0..parts)
            .map(|r| {
                let pr = sparcml::stream::partition_range(dim, parts, r);
                s.restrict(pr.lo, pr.hi)
            })
            .collect();
        let joined = SparseStream::concat_disjoint(&restricted).unwrap();
        prop_assert_eq!(joined.to_dense_vec(), s.to_dense_vec());
    }

    #[test]
    fn wire_bytes_decide_repr_efficiency((dim, pairs) in stream_inputs()) {
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let mut d = s.clone();
        d.densify();
        // The δ rule: sparse is smaller iff stored_len <= δ.
        let delta = sparcml::stream::delta_raw::<f32>(dim);
        if s.stored_len() <= delta {
            prop_assert!(s.wire_bytes() <= d.wire_bytes());
        } else {
            prop_assert!(s.wire_bytes() >= d.wire_bytes());
        }
    }

    #[test]
    fn scale_is_linear((dim, pairs) in stream_inputs(), factor in -4.0f32..4.0) {
        let mut s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let before = s.to_dense_vec();
        s.scale(factor);
        for (a, b) in s.to_dense_vec().iter().zip(&before) {
            prop_assert!((a - b * factor).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn qsgd_error_bounded_and_sign_preserving(
        values in proptest::collection::vec(-50.0f32..50.0, 1..300),
        bits in prop_oneof![Just(2u8), Just(4u8), Just(8u8)],
        seed in 0u64..500,
    ) {
        let cfg = QsgdConfig { bits, bucket_size: 64, norm: NormKind::MaxAbs };
        let q = quantize(&values, &cfg, &mut XorShift64::new(seed));
        let back = dequantize(&q);
        let s = ((1u16 << (bits - 1)) - 1) as f32;
        for (i, (a, b)) in values.iter().zip(&back).enumerate() {
            let bucket = i / cfg.bucket_size;
            let bound = q.scales[bucket] / s + 1e-5;
            prop_assert!((a - b).abs() <= bound, "i={i}: |{a}-{b}| > {bound}");
            if *b != 0.0 {
                prop_assert_eq!(a.signum(), b.signum());
            }
        }
    }

    #[test]
    fn f64_streams_round_trip((dim, pairs) in stream_inputs()) {
        let pairs64: Vec<(u32, f64)> = pairs.iter().map(|&(i, v)| (i, v as f64)).collect();
        let s = SparseStream::from_pairs(dim, &pairs64).unwrap();
        let back = SparseStream::<f64>::decode(&s.encode()).unwrap();
        prop_assert_eq!(back, s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topk_error_feedback_mass_conservation(
        grads in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 32),
            1..10,
        ),
        k in 1usize..4,
    ) {
        use sparcml::opt::{ErrorFeedback, TopKConfig};
        let dim = 32;
        let cfg = TopKConfig { k_per_bucket: k, bucket_size: 8 };
        let mut ef = ErrorFeedback::new(dim, cfg);
        let mut total = vec![0.0f32; dim];
        let mut sent = vec![0.0f32; dim];
        for g in &grads {
            for (t, gi) in total.iter_mut().zip(g) {
                *t += *gi;
            }
            let s = ef.compress(g);
            for (i, v) in s.iter_nonzero() {
                sent[i as usize] += v;
            }
            for i in 0..dim {
                let rec = sent[i] + ef.residual()[i];
                prop_assert!((rec - total[i]).abs() < 1e-3, "coord {i}: {rec} vs {}", total[i]);
            }
        }
    }
}
