//! Property-based tests of the sparse stream core invariants.
//!
//! Runs on the deterministic in-repo case generator (seeded `XorShift64`)
//! instead of the `proptest` crate — the build environment has no
//! registry access; failures reproduce by construction.

use sparcml::quant::{dequantize, quantize, NormKind, QsgdConfig};
use sparcml::stream::{DensityPolicy, SparseStream, XorShift64};

/// One randomized stream input: a dimension in 16..512 plus up to dim/2
/// in-range (index, value) pairs.
fn stream_inputs(rng: &mut XorShift64) -> (usize, Vec<(u32, f32)>) {
    let dim = 16 + rng.next_below(496) as usize;
    let nnz = rng.next_below(((dim / 2).max(1)) as u64) as usize;
    let pairs = (0..nnz)
        .map(|_| {
            let idx = rng.next_below(dim as u64) as u32;
            let val = (rng.next_gaussian() * 30.0) as f32;
            (idx, val)
        })
        .collect();
    (dim, pairs)
}

const CASES: usize = 48;

#[test]
fn from_pairs_preserves_logical_vector() {
    let mut rng = XorShift64::new(1);
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        s.check_invariants().unwrap();
        let mut expect = vec![0.0f32; dim];
        for &(i, v) in &pairs {
            expect[i as usize] += v;
        }
        let got = s.to_dense_vec();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 1e-3 * (1.0 + e.abs()));
        }
    }
}

#[test]
fn sum_matches_dense_reference() {
    let mut rng = XorShift64::new(2);
    for case in 0..CASES {
        let (dim, a) = stream_inputs(&mut rng);
        let b_seed = rng.next_below(1000);
        let mut sa = SparseStream::from_pairs(dim, &a).unwrap();
        let mut sb = sparcml::stream::random_sparse::<f32>(dim, (dim / 4).max(1), b_seed);
        if case % 2 == 0 {
            sa.densify();
        }
        if case % 3 == 0 {
            sb.densify();
        }
        let mut expect = sa.to_dense_vec();
        for (i, v) in sb.iter_nonzero() {
            expect[i as usize] += v;
        }
        sa.add_assign(&sb).unwrap();
        let got = sa.to_dense_vec();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 1e-3 * (1.0 + e.abs()), "{g} vs {e}");
        }
    }
}

#[test]
fn sum_switches_repr_only_past_delta() {
    let mut rng = XorShift64::new(3);
    for _ in 0..CASES {
        let (dim, a) = stream_inputs(&mut rng);
        let b_seed = rng.next_below(1000);
        let mut sa = SparseStream::from_pairs(dim, &a).unwrap();
        let sb = sparcml::stream::random_sparse::<f32>(dim, (dim / 8).max(1), b_seed);
        let policy = DensityPolicy::default();
        let pre_len = sa.stored_len() + sb.stored_len();
        let stats = sa.add_assign_with(&sb, &policy).unwrap();
        let delta = policy.delta::<f32>(dim);
        if stats.switched_to_dense {
            assert!(pre_len > delta);
        } else if sa.is_sparse() {
            assert!(pre_len <= delta);
        }
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = XorShift64::new(4);
    for case in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let mut s = SparseStream::from_pairs(dim, &pairs).unwrap();
        if case % 2 == 0 {
            s.densify();
        }
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.encoded_len());
        let back = SparseStream::<f32>::decode(&bytes).unwrap();
        assert_eq!(back, s);
    }
}

#[test]
fn slab_codec_round_trip_all_shapes() {
    // Sparse/dense × f32/f64, sweeping density from empty to full.
    let mut rng = XorShift64::new(40);
    for case in 0..CASES {
        let dim = 8 + rng.next_below(504) as usize;
        // Hit the edges explicitly: empty, a single entry, full density.
        let nnz = match case % 4 {
            0 => 0,
            1 => 1,
            2 => dim,
            _ => rng.next_below(dim as u64) as usize,
        };
        let mut idx: Vec<u32> = (0..dim as u32).collect();
        // Deterministic shuffle-truncate-sort to pick nnz distinct indices.
        for i in (1..idx.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(nnz);
        idx.sort_unstable();

        let vals32: Vec<f32> = idx.iter().map(|_| rng.next_gaussian() as f32).collect();
        let s32 = SparseStream::from_slabs(dim, idx.clone(), vals32).unwrap();
        let back = SparseStream::<f32>::decode(&s32.encode()).unwrap();
        assert_eq!(back, s32, "sparse f32 dim={dim} nnz={nnz}");

        let vals64: Vec<f64> = idx.iter().map(|_| rng.next_gaussian()).collect();
        let s64 = SparseStream::from_slabs(dim, idx.clone(), vals64).unwrap();
        let back = SparseStream::<f64>::decode(&s64.encode()).unwrap();
        assert_eq!(back, s64, "sparse f64 dim={dim} nnz={nnz}");

        let mut d32 = s32.clone();
        d32.densify();
        let back = SparseStream::<f32>::decode(&d32.encode()).unwrap();
        assert_eq!(back, d32, "dense f32 dim={dim}");

        let mut d64 = s64.clone();
        d64.densify();
        let back = SparseStream::<f64>::decode(&d64.encode()).unwrap();
        assert_eq!(back, d64, "dense f64 dim={dim}");
    }
}

#[test]
fn slab_codec_encode_into_is_stable_under_reuse() {
    // One reused buffer across frames of very different sizes must always
    // produce exactly the frame a fresh encode would.
    let mut rng = XorShift64::new(41);
    let mut buf = Vec::new();
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let mut s = SparseStream::from_pairs(dim, &pairs).unwrap();
        if rng.next_below(2) == 0 {
            s.densify();
        }
        s.encode_into(&mut buf);
        assert_eq!(buf.as_slice(), s.encode().as_ref());
        assert_eq!(buf.len(), s.encoded_len());
    }
}

/// Reference array-of-structs summation: a sorted `Vec<(u32, V)>` merged
/// entry by entry, the way the pre-SoA stream computed sums.
fn aos_reference_sum(dim: usize, a: &SparseStream<f32>, b: &SparseStream<f32>) -> Vec<f32> {
    let mut pairs: Vec<(u32, f32)> = Vec::new();
    for s in [a, b] {
        for (i, v) in s.iter_nonzero() {
            pairs.push((i, v));
        }
    }
    pairs.sort_by_key(|&(i, _)| i);
    let mut out = vec![0.0f32; dim];
    for (i, v) in pairs {
        out[i as usize] += v;
    }
    out
}

#[test]
fn soa_sum_equals_aos_reference_across_repr_switches() {
    // The SoA merge/scatter kernels must agree with the entry-by-entry
    // AoS reference for every repr combination, including the summations
    // that cross the δ threshold and switch representation mid-call.
    let mut rng = XorShift64::new(42);
    for case in 0..CASES {
        let (dim, a_pairs) = stream_inputs(&mut rng);
        // Push some cases past δ so the sparse+sparse path densifies.
        let b_nnz = if case % 3 == 0 {
            (dim * 2 / 3).max(1)
        } else {
            (dim / 6).max(1)
        };
        let mut sa = SparseStream::from_pairs(dim, &a_pairs).unwrap();
        let mut sb = sparcml::stream::random_sparse::<f32>(dim, b_nnz, rng.next_below(1 << 20));
        if case % 4 == 1 {
            sa.densify();
        }
        if case % 4 == 2 {
            sb.densify();
        }
        let expect = aos_reference_sum(dim, &sa, &sb);
        let stats = sa.add_assign(&sb).unwrap();
        sa.check_invariants().unwrap();
        assert_eq!(stats.result_dense, sa.is_dense());
        let got = sa.to_dense_vec();
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-3 * (1.0 + e.abs()),
                "case {case} coord {i}: {g} vs {e}"
            );
        }
    }
}

#[test]
fn decoded_frames_always_satisfy_invariants() {
    // Whatever bytes decode accepts must already satisfy the stream
    // invariants — the collectives rely on never re-validating.
    let mut rng = XorShift64::new(43);
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let decoded = SparseStream::<f32>::decode(&s.encode()).unwrap();
        decoded.check_invariants().unwrap();
    }
}

#[test]
fn malformed_frames_never_decode() {
    // Random single-byte corruptions either still decode to an
    // invariant-satisfying stream (value bytes) or fail with a typed
    // error — never an invalid stream, never a panic.
    let mut rng = XorShift64::new(44);
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let bytes = s.encode().to_vec();
        for _ in 0..8 {
            let mut corrupted = bytes.clone();
            let pos = rng.next_below(corrupted.len() as u64) as usize;
            corrupted[pos] ^= 1 << rng.next_below(8);
            if let Ok(decoded) = SparseStream::<f32>::decode(&corrupted) {
                decoded.check_invariants().unwrap();
            }
            // Truncations of the corrupted frame must also fail cleanly.
            let cut = rng.next_below(corrupted.len() as u64) as usize;
            if let Ok(decoded) = SparseStream::<f32>::decode(&corrupted[..cut]) {
                decoded.check_invariants().unwrap();
            }
        }
    }
}

#[test]
fn restrict_partition_concat_is_identity() {
    let mut rng = XorShift64::new(5);
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let parts = 1 + rng.next_below(7) as usize;
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let restricted: Vec<SparseStream<f32>> = (0..parts)
            .map(|r| {
                let pr = sparcml::stream::partition_range(dim, parts, r);
                s.restrict(pr.lo, pr.hi)
            })
            .collect();
        let joined = SparseStream::concat_disjoint(&restricted).unwrap();
        assert_eq!(joined.to_dense_vec(), s.to_dense_vec());
    }
}

#[test]
fn wire_bytes_decide_repr_efficiency() {
    let mut rng = XorShift64::new(6);
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let mut d = s.clone();
        d.densify();
        // The δ rule: sparse is smaller iff stored_len <= δ.
        let delta = sparcml::stream::delta_raw::<f32>(dim);
        if s.stored_len() <= delta {
            assert!(s.wire_bytes() <= d.wire_bytes());
        } else {
            assert!(s.wire_bytes() >= d.wire_bytes());
        }
    }
}

#[test]
fn scale_is_linear() {
    let mut rng = XorShift64::new(7);
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let factor = (rng.next_gaussian() * 2.0) as f32;
        let mut s = SparseStream::from_pairs(dim, &pairs).unwrap();
        let before = s.to_dense_vec();
        s.scale(factor);
        for (a, b) in s.to_dense_vec().iter().zip(&before) {
            assert!((a - b * factor).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }
}

#[test]
fn qsgd_error_bounded_and_sign_preserving() {
    let mut rng = XorShift64::new(8);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(299) as usize;
        let values: Vec<f32> = (0..len)
            .map(|_| (rng.next_gaussian() * 15.0) as f32)
            .collect();
        let bits = [2u8, 4, 8][rng.next_below(3) as usize];
        let seed = rng.next_below(500);
        let cfg = QsgdConfig {
            bits,
            bucket_size: 64,
            norm: NormKind::MaxAbs,
        };
        let q = quantize(&values, &cfg, &mut XorShift64::new(seed));
        let back = dequantize(&q);
        let s = ((1u16 << (bits - 1)) - 1) as f32;
        for (i, (a, b)) in values.iter().zip(&back).enumerate() {
            let bucket = i / cfg.bucket_size;
            let bound = q.scales[bucket] / s + 1e-5;
            assert!((a - b).abs() <= bound, "i={i}: |{a}-{b}| > {bound}");
            if *b != 0.0 {
                assert_eq!(a.signum(), b.signum());
            }
        }
    }
}

#[test]
fn f64_streams_round_trip() {
    let mut rng = XorShift64::new(9);
    for _ in 0..CASES {
        let (dim, pairs) = stream_inputs(&mut rng);
        let pairs64: Vec<(u32, f64)> = pairs.iter().map(|&(i, v)| (i, v as f64)).collect();
        let s = SparseStream::from_pairs(dim, &pairs64).unwrap();
        let back = SparseStream::<f64>::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
    }
}

#[test]
fn topk_error_feedback_mass_conservation() {
    use sparcml::opt::{ErrorFeedback, TopKConfig};
    let mut rng = XorShift64::new(10);
    for _ in 0..32 {
        let dim = 32;
        let rounds = 1 + rng.next_below(9) as usize;
        let k = 1 + rng.next_below(3) as usize;
        let cfg = TopKConfig {
            k_per_bucket: k,
            bucket_size: 8,
        };
        let mut ef = ErrorFeedback::new(dim, cfg);
        let mut total = vec![0.0f32; dim];
        let mut sent = vec![0.0f32; dim];
        for _ in 0..rounds {
            let g: Vec<f32> = (0..dim)
                .map(|_| (rng.next_gaussian() * 3.0) as f32)
                .collect();
            for (t, gi) in total.iter_mut().zip(&g) {
                *t += *gi;
            }
            let s = ef.compress(&g);
            for (i, v) in s.iter_nonzero() {
                sent[i as usize] += v;
            }
            for i in 0..dim {
                let rec = sent[i] + ef.residual()[i];
                assert!(
                    (rec - total[i]).abs() < 1e-3,
                    "coord {i}: {rec} vs {}",
                    total[i]
                );
            }
        }
    }
}
