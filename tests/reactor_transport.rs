//! ReactorTransport integration suite: the full transport-parity matrix
//! of `tcp_transport.rs` on the readiness-driven event-loop backend.
//!
//! Every rank is an OS thread with its own single-threaded reactor, and
//! the messages cross the real TCP stack — same rendezvous, same framing,
//! same mailbox semantics as the thread-per-peer transport. Four parts:
//!
//! * the **transport-parity matrix** — all allreduce algorithms (plus
//!   Auto's k-agreement, allgathers, rooted, quantized and non-blocking
//!   paths) for pow2 and non-pow2 rank counts, checked against the
//!   sequential reference and bitwise against the virtual-time and TCP
//!   transports on integer inputs;
//! * **socket edge cases** — short reads reassembled across wakeups,
//!   peers closing mid-frame, oversized frame declarations, and
//!   malformed wire-v2 payloads;
//! * a **P = 64 loopback smoke test** that also asserts the thread-count
//!   win: one event loop per rank instead of a thread pair per peer;
//! * the **progress engine** running fused gradient buckets over the
//!   reactor.

use std::time::Duration;

use sparcml::core::reference::reference_sum;
use sparcml::core::{
    run_communicators, run_reactor_communicators, run_reactor_communicators_with,
    run_tcp_communicators, Algorithm, Communicator,
};
use sparcml::engine::{CommunicatorEngineExt, EngineConfig};
use sparcml::net::{
    run_reactor_loopback_cluster, CommError, CostModel, ReactorTransport, Transport,
    TransportConfig,
};
use sparcml::quant::QsgdConfig;
use sparcml::stream::{random_sparse, Scalar, SparseStream, StreamError};

use bytes::Bytes;

fn quick_config() -> TransportConfig {
    TransportConfig::default()
        .with_recv_timeout(Duration::from_secs(20))
        .with_connect_timeout(Duration::from_secs(20))
}

/// Runs one allreduce program over the loopback reactor cluster and
/// checks every rank against the sequential reference.
fn check_algo_over_reactor<V: Scalar>(algo: Algorithm, p: usize, dim: usize, nnz: usize, tol: f64) {
    let ins: Vec<SparseStream<V>> = (0..p)
        .map(|r| random_sparse(dim, nnz, 7100 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_reactor_communicators(p, |comm| {
        comm.allreduce(&ins[comm.rank()])
            .algorithm(algo)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    });
    for (rank, out) in outs.iter().enumerate() {
        assert_eq!(out.dim(), dim);
        let got = out.to_dense_vec();
        for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
            assert!(
                (g.to_f64() - e.to_f64()).abs() < tol,
                "{algo:?} on ReactorTransport P={p} rank {rank} coord {i}: {g:?} vs {e:?}"
            );
        }
    }
}

#[test]
fn all_algorithms_match_reference_over_reactor() {
    // The parity matrix of the TCP suite, on the event-loop backend:
    // pow2 and non-pow2 rank counts.
    for &p in &[3usize, 4, 5, 8] {
        for algo in Algorithm::ALL {
            check_algo_over_reactor::<f32>(algo, p, 2048, 64, 1e-3);
        }
    }
}

#[test]
fn auto_and_f64_match_reference_over_reactor() {
    for &p in &[3usize, 4, 5, 8] {
        check_algo_over_reactor::<f32>(Algorithm::Auto, p, 2048, 96, 1e-3);
    }
    check_algo_over_reactor::<f64>(Algorithm::SsarRecDbl, 5, 1024, 48, 1e-9);
    check_algo_over_reactor::<f64>(Algorithm::Auto, 4, 1024, 48, 1e-9);
}

#[test]
fn auto_k_agreement_with_skewed_nnz_over_reactor() {
    // Ranks contribute *different* nonzero counts: the Auto path must
    // agree on one k over the real wire (a per-rank choice could pick
    // different schedules and deadlock).
    let p = 4;
    let dim = 4096;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 16 + 40 * r, 9900 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_reactor_communicators(p, |comm| {
        comm.allreduce(&ins[comm.rank()])
            .launch()
            .and_then(|h| h.wait())
            .unwrap()
    });
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-3);
        }
    }
}

#[test]
fn allgather_variants_over_reactor() {
    let p = 5;
    let dim = 1024;
    let outs = run_reactor_communicators(p, |comm| {
        let mine = random_sparse::<f32>(dim, 24, 501 + comm.rank() as u64);
        let gathered = comm
            .allgather(&mine)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let summed = comm
            .allgather_sum(&mine)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let block = vec![comm.rank() as f32; 8];
        let dense = comm
            .allgather_dense(&block)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        (gathered, summed, dense)
    });
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 24, 501 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    for (gathered, summed, dense) in outs {
        assert_eq!(gathered.len(), p);
        for (r, s) in gathered.iter().enumerate() {
            assert_eq!(s, &ins[r]);
        }
        for (g, e) in summed.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
        assert_eq!(dense.len(), p);
        for (r, b) in dense.iter().enumerate() {
            assert!(b.iter().all(|&v| v == r as f32));
        }
    }
}

#[test]
fn rooted_collectives_over_reactor() {
    let p = 5;
    let dim = 2048;
    let root = 2;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 48, 61 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_reactor_communicators(p, |comm| {
        let reduced = comm
            .reduce(&ins[comm.rank()], root)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let bcast = comm
            .broadcast(&reduced, root)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        let scattered = comm
            .reduce_scatter(&ins[comm.rank()])
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        (bcast, scattered)
    });
    for (rank, (bcast, scattered)) in outs.iter().enumerate() {
        for (g, e) in bcast.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-4, "broadcast rank {rank}");
        }
        for (i, v) in scattered.to_dense_vec().iter().enumerate() {
            if *v != 0.0 {
                assert!((v - expect[i]).abs() < 1e-4, "reduce_scatter rank {rank}");
            }
        }
    }
}

#[test]
fn quantized_and_nonblocking_over_reactor() {
    // DSAR + QSGD rides the same frames, and a non-blocking launch moves
    // the whole ReactorTransport (sockets, loop thread handle) onto a
    // helper thread and back.
    let p = 4;
    let dim = 4096;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 256, 881 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let quant = QsgdConfig {
        bits: 8,
        bucket_size: 512,
        ..QsgdConfig::paper_default()
    };
    let outs = run_reactor_communicators(p, |comm| {
        let mut handle = comm
            .allreduce(&ins[comm.rank()])
            .algorithm(Algorithm::DsarSplitAllgather)
            .quantized(quant)
            .nonblocking()
            .launch()
            .unwrap();
        handle.compute(1_000);
        handle.wait().unwrap()
    });
    let max_abs = expect.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() <= max_abs / 127.0 + 1e-3, "{g} vs {e}");
        }
    }
}

#[test]
fn reactor_matches_virtual_time_and_tcp_bitwise_for_integer_values() {
    // Integer-valued inputs make every summation order exact, so the
    // reactor run must agree bit for bit with both the virtual-time
    // Endpoint run and the thread-per-peer TCP run.
    let p = 4;
    let dim = 1024;
    let mk = |rank: usize| {
        let pairs: Vec<(u32, f32)> = (0..48)
            .map(|i| (((rank * 37 + i * 11) % dim) as u32, 1.0f32))
            .collect();
        SparseStream::from_pairs(dim, &pairs).unwrap()
    };
    for algo in [
        Algorithm::SsarRecDbl,
        Algorithm::SsarSplitAllgather,
        Algorithm::SparseRing,
    ] {
        let virtual_outs = run_communicators(p, CostModel::zero(), |comm| {
            comm.allreduce(&mk(comm.rank()))
                .algorithm(algo)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        let tcp_outs = run_tcp_communicators(p, |comm| {
            comm.allreduce(&mk(comm.rank()))
                .algorithm(algo)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        let reactor_outs = run_reactor_communicators(p, |comm| {
            comm.allreduce(&mk(comm.rank()))
                .algorithm(algo)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        assert_eq!(virtual_outs, reactor_outs, "{algo:?} vs virtual time");
        assert_eq!(tcp_outs, reactor_outs, "{algo:?} vs thread-per-peer TCP");
    }
}

// ---------------------------------------------------------------------------
// Socket edge cases
// ---------------------------------------------------------------------------

/// Data-frame header as the wire defines it: `[len: u32 LE][tag: u64 LE]`.
fn frame_header(len: usize, tag: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(12);
    h.extend_from_slice(&(len as u32).to_le_bytes());
    h.extend_from_slice(&tag.to_le_bytes());
    h
}

#[test]
fn short_reads_reassemble_into_whole_frames_on_reactor() {
    // The payload dribbles in over many small raw writes with pauses;
    // the loop's incremental reassembly must carry the partial frame
    // across wakeups and deliver exactly one message.
    let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    let expected = payload.clone();
    let results = run_reactor_loopback_cluster(2, CostModel::zero(), quick_config(), move |tp| {
        if tp.rank() == 1 {
            let mut wire = frame_header(payload.len(), 9);
            wire.extend_from_slice(&payload);
            for chunk in wire.chunks(7) {
                tp.send_raw(0, chunk).unwrap();
                std::thread::sleep(Duration::from_micros(200));
            }
            // Hold the socket open until rank 0 confirms receipt, so the
            // frame cannot be confused with a close-race.
            let _ = tp.recv(0, 10).unwrap();
            Vec::new()
        } else {
            let got = tp.recv(1, 9).unwrap();
            tp.send(1, 10, Bytes::new()).unwrap();
            got.to_vec()
        }
    });
    assert_eq!(results[0], expected);
}

#[test]
fn peer_closing_mid_frame_is_a_typed_disconnect_on_reactor() {
    let results = run_reactor_loopback_cluster(2, CostModel::zero(), quick_config(), |tp| {
        if tp.rank() == 1 {
            // Declare 100 payload bytes, deliver only 10, then vanish.
            let mut wire = frame_header(100, 3);
            wire.extend_from_slice(&[0xAB; 10]);
            tp.send_raw(0, &wire).unwrap();
            (true, String::new())
        } else {
            let err = tp.recv(1, 3).unwrap_err();
            let reason = tp.close_reason(1).unwrap_or("").to_string();
            (
                matches!(err, CommError::PeerDisconnected { peer: 1 }),
                reason,
            )
        }
    });
    let (is_disconnect, reason) = &results[0];
    assert!(is_disconnect, "mid-frame close must be PeerDisconnected");
    assert!(
        reason.contains("mid-frame"),
        "close reason should say mid-frame, got: {reason}"
    );
}

#[test]
fn oversized_frame_declaration_is_rejected_on_reactor() {
    // A corrupt (or hostile) length prefix must not be honored with a
    // giant allocation: the connection is dropped with a typed error.
    let config = quick_config();
    let small = TransportConfig {
        max_frame_len: 1 << 10,
        ..config
    };
    let results = run_reactor_loopback_cluster(2, CostModel::zero(), small, |tp| {
        if tp.rank() == 1 {
            tp.send_raw(0, &frame_header(1 << 20, 4)).unwrap();
            // Our peer will cut the connection; just report success.
            (true, String::new())
        } else {
            let err = tp.recv(1, 4).unwrap_err();
            let reason = tp.close_reason(1).unwrap_or("").to_string();
            (
                matches!(err, CommError::PeerDisconnected { peer: 1 }),
                reason,
            )
        }
    });
    let (is_disconnect, reason) = &results[0];
    assert!(is_disconnect);
    assert!(
        reason.contains("exceeds"),
        "close reason should flag the limit, got: {reason}"
    );
}

#[test]
fn malformed_wire_v2_frames_surface_typed_stream_errors_on_reactor() {
    // Frames arrive intact but their wire-v2 payload is bad: the typed
    // StreamErrors must surface, exactly as on the other transports.
    let results = run_reactor_loopback_cluster(2, CostModel::zero(), quick_config(), |tp| {
        if tp.rank() == 1 {
            let good = random_sparse::<f32>(256, 16, 42).encode();
            // (a) truncated: drop the tail of a valid frame.
            tp.send(0, 1, good.slice(0..good.len() - 5)).unwrap();
            // (b) unsorted indices: swap the first two u32 entries of the
            // index slab (the sparse header is 20 bytes).
            let mut bad = good.to_vec();
            for i in 0..4 {
                bad.swap(20 + i, 24 + i);
            }
            tp.send(0, 2, Bytes::from(bad)).unwrap();
            let _ = tp.recv(0, 3).unwrap();
            (None, None)
        } else {
            let truncated = tp.recv(1, 1).unwrap();
            let e1 = SparseStream::<f32>::decode(&truncated).unwrap_err();
            let unsorted = tp.recv(1, 2).unwrap();
            let e2 = SparseStream::<f32>::decode(&unsorted).unwrap_err();
            tp.send(1, 3, Bytes::new()).unwrap();
            (Some(e1), Some(e2))
        }
    });
    let (e1, e2) = &results[0];
    assert!(
        matches!(e1, Some(StreamError::Truncated { .. })),
        "got {e1:?}"
    );
    assert!(
        matches!(e2, Some(StreamError::UnsortedIndices { .. })),
        "got {e2:?}"
    );
}

#[test]
fn communicator_survives_collective_error_and_reports_it_on_reactor() {
    // A collective over a vanished peer must error (not hang), and the
    // error must be a communication error.
    let config = quick_config().with_recv_timeout(Duration::from_secs(2));
    let results = run_reactor_loopback_cluster(2, CostModel::zero(), config, |tp| {
        if tp.rank() == 1 {
            // Vanish before participating.
            String::new()
        } else {
            let mut comm = Communicator::new(tp.detach());
            let input = random_sparse::<f32>(512, 16, 3);
            let err = comm
                .allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .unwrap_err();
            *tp = comm.into_transport();
            err.to_string()
        }
    });
    assert!(
        results[0].contains("disconnected") || results[0].contains("timed out"),
        "got: {}",
        results[0]
    );
}

#[test]
fn wrong_rank_fails_reactor_rendezvous() {
    let err = ReactorTransport::rendezvous(
        3,
        2,
        "127.0.0.1:1",
        CostModel::zero(),
        TransportConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, CommError::InvalidRank { rank: 3, size: 2 }));
}

// ---------------------------------------------------------------------------
// Thread scale: P = 64 in one process
// ---------------------------------------------------------------------------

/// This process's live thread count, from `/proc/self/status`.
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn p64_loopback_smoke_with_bounded_threads() {
    // 64 ranks in one process. On the thread-per-peer transport this mesh
    // would need 64·2·63 ≈ 8000 I/O threads; the reactor needs one loop
    // thread per rank. Run a real allreduce for parity and assert the
    // thread count stays in the event-loop regime.
    let p = 64;
    let dim = 2048;
    let nnz = 32;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| {
            let pairs: Vec<(u32, f32)> = (0..nnz)
                .map(|i| (((r * 131 + i * 17) % dim) as u32, 1.0f32))
                .collect();
            SparseStream::from_pairs(dim, &pairs).unwrap()
        })
        .collect();
    let expect = reference_sum(&ins);
    let config = TransportConfig::default()
        .with_recv_timeout(Duration::from_secs(60))
        .with_connect_timeout(Duration::from_secs(60));
    let outs = run_reactor_communicators_with(p, CostModel::loopback_tcp(), config, |comm| {
        let out = comm
            .allreduce(&ins[comm.rank()])
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        (out.to_dense_vec(), process_threads())
    });
    for (rank, (got, threads)) in outs.iter().enumerate() {
        assert_eq!(got, &expect, "rank {rank} result");
        if let Some(threads) = threads {
            // 64 rank threads + 64 loop threads + main + slack. The
            // thread-per-peer design would sit at ~8000 here.
            assert!(
                *threads <= 3 * p + 16,
                "rank {rank} saw {threads} threads — not event-loop scale"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Progress engine over the reactor
// ---------------------------------------------------------------------------

/// Deterministic integer-valued input for `(rank, layer)` (identical to
/// the engine suite's helper): every summation order produces identical
/// bits, so fused and sequential results compare exactly.
fn integer_stream(rank: usize, layer: usize, dim: usize, nnz: usize) -> SparseStream<f32> {
    let pairs: Vec<(u32, f32)> = (0..nnz)
        .map(|i| {
            (
                ((rank * 131 + layer * 37 + i * 17) % dim) as u32,
                (1 + (rank + layer + i) % 5) as f32,
            )
        })
        .collect();
    SparseStream::from_pairs(dim, &pairs).unwrap()
}

#[test]
fn engine_fused_group_over_reactor_is_exact() {
    // The progress engine's fused-bucket path (background thread owning
    // the transport, priority-scheduled concurrent collectives) on top of
    // the reactor: detach/reattach and tag-block isolation must compose
    // with the event loop.
    let (p, layers, dim, nnz) = (4, 16, 1024, 48);
    let expect: Vec<Vec<f32>> = (0..layers)
        .map(|l| {
            let ins: Vec<SparseStream<f32>> =
                (0..p).map(|r| integer_stream(r, l, dim, nnz)).collect();
            reference_sum(&ins)
        })
        .collect();
    let outs = run_reactor_communicators(p, |comm| {
        let config = EngineConfig {
            algorithm: Algorithm::SsarRecDbl,
            ..EngineConfig::default()
        };
        let mut engine = comm.engine::<f32>(config);
        let grads: Vec<SparseStream<f32>> = (0..layers)
            .map(|l| integer_stream(engine.rank(), l, dim, nnz))
            .collect();
        let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
        let tickets = engine.submit_allreduce_group(&refs);
        let results: Vec<SparseStream<f32>> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let stats = engine.stats();
        engine.finish_into(comm).unwrap();
        (results, stats)
    });
    for (results, stats) in outs {
        assert_eq!(stats.buckets, 1, "all layers must fuse into one bucket");
        assert_eq!(stats.fused_jobs, layers as u64);
        for (l, out) in results.iter().enumerate() {
            assert_eq!(
                out.to_dense_vec(),
                expect[l],
                "fused layer {l} must be element-exact over the reactor"
            );
        }
    }
}
