//! TcpTransport integration suite, part 2: real OS processes.
//!
//! Every test here re-executes this test binary once per rank through
//! `sparcml::net::run_tcp_cluster` (the launcher sets the
//! `SPARCML_RANK`/`SPARCML_WORLD`/`SPARCML_ROOT_ADDR` bootstrap and the
//! `--exact` libtest filter, so each child process runs exactly the test
//! that spawned it and becomes one rank). This is the acceptance harness
//! for the paper-shaped claim: `Communicator<TcpTransport>` completes all
//! allreduce algorithms, allgather, and the rooted collectives across
//! ≥ 4 genuinely separate processes over loopback — and a killed peer
//! makes every surviving rank fail loudly instead of hanging.
//!
//! Pattern: the `job` string passed to the launcher must equal the test
//! function's name, and worker processes bail out through the
//! `else { return }` arm (the parent does the asserting).

use std::time::Duration;

use sparcml::core::reference::reference_sum;
use sparcml::core::{Algorithm, Communicator};
use sparcml::net::{run_tcp_cluster, run_tcp_cluster_outcomes, LaunchOptions, Transport};
use sparcml::stream::{random_sparse, SparseStream};

/// Deterministic integer-valued input for `rank`: every summation order
/// produces identical bits, so ranks and the sequential reference can be
/// compared exactly, even across processes.
fn integer_stream(rank: usize, dim: usize, nnz: usize) -> SparseStream<f32> {
    let pairs: Vec<(u32, f32)> = (0..nnz)
        .map(|i| (((rank * 131 + i * 17) % dim) as u32, 1.0f32))
        .collect();
    SparseStream::from_pairs(dim, &pairs).unwrap()
}

/// FNV-1a over the dense f32 bit pattern — a compact result fingerprint
/// that survives the stdout hop between processes.
fn fingerprint(dense: &[f32]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in dense {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

fn opts() -> LaunchOptions {
    LaunchOptions::for_test().with_timeout(Duration::from_secs(120))
}

#[test]
fn tcp_all_allreduce_algorithms_across_processes() {
    let world = 4;
    let dim = 2048;
    let nnz = 96;
    let Some(results) = run_tcp_cluster(
        "tcp_all_allreduce_algorithms_across_processes",
        world,
        &opts(),
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let input = integer_stream(comm.rank(), dim, nnz);
            let mut parts = Vec::new();
            for algo in Algorithm::ALL {
                let out = comm
                    .allreduce(&input)
                    .algorithm(algo)
                    .launch()
                    .and_then(|h| h.wait())
                    .unwrap();
                parts.push(format!(
                    "{}={}",
                    algo.name(),
                    fingerprint(&out.to_dense_vec())
                ));
            }
            *tp = comm.into_transport();
            parts.join(";")
        },
    ) else {
        return;
    };
    // Every rank must agree with the sequential reference, algorithm by
    // algorithm (integer inputs make this exact).
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, nnz)).collect();
    let expect = fingerprint(&reference_sum(&ins));
    let expected_line = Algorithm::ALL
        .iter()
        .map(|a| format!("{}={}", a.name(), expect))
        .collect::<Vec<_>>()
        .join(";");
    for (rank, line) in results.iter().enumerate() {
        assert_eq!(line, &expected_line, "rank {rank} disagrees");
    }
}

#[test]
fn tcp_allgather_and_rooted_across_processes() {
    // Non-pow2 world exercises the fold/ring paths across processes.
    let world = 5;
    let dim = 1024;
    let Some(results) = run_tcp_cluster(
        "tcp_allgather_and_rooted_across_processes",
        world,
        &opts(),
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let rank = comm.rank();
            let ins: Vec<SparseStream<f32>> =
                (0..world).map(|r| integer_stream(r, dim, 40)).collect();
            let expect = reference_sum(&ins);

            // Allgather: every rank's stream arrives intact, in order.
            let gathered = comm
                .allgather(&ins[rank])
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            assert_eq!(gathered.len(), world);
            for (r, s) in gathered.iter().enumerate() {
                assert_eq!(s, &ins[r], "allgather rank {rank} slot {r}");
            }

            // Rooted: reduce to rank 1, broadcast back, reduce-scatter.
            let reduced = comm
                .reduce(&ins[rank], 1)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            let bcast = comm
                .broadcast(&reduced, 1)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            assert_eq!(bcast.to_dense_vec(), expect, "broadcast rank {rank}");
            let scattered = comm
                .reduce_scatter(&ins[rank])
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            for (i, v) in scattered.to_dense_vec().iter().enumerate() {
                assert!(
                    *v == 0.0 || *v == expect[i],
                    "reduce_scatter rank {rank} coord {i}"
                );
            }
            *tp = comm.into_transport();
            fingerprint(&bcast.to_dense_vec())
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, 40)).collect();
    let expect = fingerprint(&reference_sum(&ins));
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(got, &expect, "rank {rank}");
    }
}

#[test]
fn tcp_auto_agrees_on_k_across_processes() {
    // Ranks contribute different nonzero counts; Algorithm::Auto must
    // agree on one k (and hence one schedule) over the real wire, on
    // every rank, and produce the reference sum.
    let world = 4;
    let dim = 4096;
    let Some(results) = run_tcp_cluster(
        "tcp_auto_agrees_on_k_across_processes",
        world,
        &opts(),
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let rank = comm.rank();
            let input = integer_stream(rank, dim, 24 + 48 * rank);
            let resolved = Algorithm::Auto.resolve_for::<f32>(
                comm.size(),
                dim,
                // The agreement maximizes k across ranks; mirror it.
                24 + 48 * (world - 1),
                comm.cost(),
            );
            let out = comm
                .allreduce(&input)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            *tp = comm.into_transport();
            format!("{}:{}", resolved.name(), fingerprint(&out.to_dense_vec()))
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world)
        .map(|r| integer_stream(r, dim, 24 + 48 * r))
        .collect();
    let expect = fingerprint(&reference_sum(&ins));
    // All ranks resolved the same schedule and computed the same sum.
    for line in &results {
        assert_eq!(line, &results[0], "ranks diverged: {results:?}");
        assert!(line.ends_with(&expect), "wrong sum: {line} vs {expect}");
    }
}

#[test]
fn tcp_nonblocking_overlap_across_processes() {
    let world = 4;
    let dim = 2048;
    let Some(results) = run_tcp_cluster(
        "tcp_nonblocking_overlap_across_processes",
        world,
        &opts(),
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let input = integer_stream(comm.rank(), dim, 64);
            let mut handle = comm
                .allreduce(&input)
                .algorithm(Algorithm::SsarSplitAllgather)
                .nonblocking()
                .launch()
                .unwrap();
            handle.compute(10_000); // overlapped local work
            let out = handle.wait().unwrap();
            *tp = comm.into_transport();
            fingerprint(&out.to_dense_vec())
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, 64)).collect();
    let expect = fingerprint(&reference_sum(&ins));
    for got in &results {
        assert_eq!(got, &expect);
    }
}

#[test]
fn tcp_killed_peer_fails_survivors_within_timeout() {
    // Rank 2 dies right after the mesh is up; every survivor's collective
    // must error out well within the watchdog budget — never hang. The
    // launcher's hard deadline would catch a hang, but the point is that
    // the error arrives from the transport, not from the kill.
    let world = 4;
    let opts = LaunchOptions::for_test()
        .with_timeout(Duration::from_secs(60))
        .with_recv_timeout(Duration::from_secs(3));
    let started = std::time::Instant::now();
    let Some(outcomes) = run_tcp_cluster_outcomes(
        "tcp_killed_peer_fails_survivors_within_timeout",
        world,
        &opts,
        |tp| {
            if tp.rank() == 2 {
                // Simulate a killed peer: vanish without any goodbye.
                std::process::exit(7);
            }
            let mut comm = Communicator::new(tp.detach());
            let input = integer_stream(comm.rank(), 1024, 32);
            let res = comm
                .allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait());
            *tp = comm.into_transport();
            match res {
                Ok(_) => "completed".to_string(),
                Err(e) => format!("errored: {e}"),
            }
        },
    ) else {
        return;
    };
    assert!(
        started.elapsed() < Duration::from_secs(45),
        "survivors took too long: {:?}",
        started.elapsed()
    );
    for o in &outcomes {
        assert!(!o.timed_out, "rank {} hit the hard deadline", o.rank);
        if o.rank == 2 {
            assert_eq!(o.exit_code, Some(7), "the dead rank must exit with 7");
        } else {
            assert_eq!(
                o.exit_code,
                Some(0),
                "rank {} stderr:\n{}",
                o.rank,
                o.stderr
            );
            let result = o.result.as_deref().unwrap_or("");
            assert!(
                result.starts_with("errored"),
                "rank {} must observe the dead peer, got: {result}",
                o.rank
            );
        }
    }
}

#[test]
fn tcp_multiple_collectives_one_session_across_processes() {
    // Back-to-back collectives on one communicator session: tags must
    // isolate them across processes exactly as in-process.
    let world = 4;
    let dim = 1024;
    let Some(results) = run_tcp_cluster(
        "tcp_multiple_collectives_one_session_across_processes",
        world,
        &opts(),
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let rank = comm.rank();
            let a = integer_stream(rank, dim, 32);
            let b = random_sparse::<f32>(dim, 16, 7000 + rank as u64);
            let first = comm
                .allreduce(&a)
                .algorithm(Algorithm::SparseRing)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            let second = comm
                .allreduce(&b)
                .algorithm(Algorithm::SsarSplitAllgather)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            *tp = comm.into_transport();
            format!("{}+{}", fingerprint(&first.to_dense_vec()), second.nnz())
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, 32)).collect();
    let expect = fingerprint(&reference_sum(&ins));
    for (rank, line) in results.iter().enumerate() {
        assert!(line.starts_with(&expect), "rank {rank}: {line}");
    }
}

#[test]
fn tcp_engine_density_guard_splits_buckets_across_processes() {
    // The k = 1e4 fusion-loss shape from BENCH_engine.json: before the
    // density-aware FusionPolicy these four 65_536-dim/10_000-nnz jobs
    // fused into ONE bandwidth-bound bucket. The guard (projected fused
    // union density 4·20_000/131_072 ≈ 0.61 > max_density = 0.5) must now
    // keep them singletons — across real processes — with the results
    // still exact.
    use sparcml::engine::{CommunicatorEngineExt, EngineConfig};

    let world = 4;
    let layers = 4;
    let dim = 1 << 16;
    let nnz = 10_000;
    let Some(results) = run_tcp_cluster(
        "tcp_engine_density_guard_splits_buckets_across_processes",
        world,
        &opts(),
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let mut engine = comm.engine::<f32>(EngineConfig {
                algorithm: Algorithm::SsarRecDbl,
                ..EngineConfig::default()
            });
            let grads: Vec<SparseStream<f32>> = (0..layers)
                .map(|l| integer_stream(engine.rank() * 7 + l, dim, nnz))
                .collect();
            let refs: Vec<&SparseStream<f32>> = grads.iter().collect();
            let tickets = engine.submit_allreduce_group(&refs);
            let fps: Vec<String> = tickets
                .into_iter()
                .map(|t| fingerprint(&t.wait().unwrap().to_dense_vec()))
                .collect();
            let stats = engine.stats();
            engine.finish_into(&mut comm).unwrap();
            *tp = comm.into_transport();
            format!(
                "{};buckets={};fused={}",
                fps.join(":"),
                stats.buckets,
                stats.fused_jobs
            )
        },
    ) else {
        return;
    };
    let expect: Vec<String> = (0..layers)
        .map(|l| {
            let ins: Vec<SparseStream<f32>> = (0..world)
                .map(|r| integer_stream(r * 7 + l, dim, nnz))
                .collect();
            fingerprint(&reference_sum(&ins))
        })
        .collect();
    let expected_line = format!("{};buckets={layers};fused=0", expect.join(":"));
    for (rank, line) in results.iter().enumerate() {
        assert_eq!(
            line, &expected_line,
            "rank {rank}: the k=1e4 shape must not fuse into one bucket"
        );
    }
}

#[test]
fn tcp_hierarchical_2x4_with_engine_on_subgroup_across_processes() {
    // 8 real OS processes pinned to a 2×4 topology (the launcher exports
    // SPARCML_NODES/SPARCML_NODE to every rank). Exercises, across real
    // sockets and processes:
    //   1. hierarchical allreduce resolving its topology *from the
    //      environment* (no explicit `.topology(..)` — the env bootstrap
    //      is the point), bitwise-equal to the flat reference;
    //   2. `Communicator::split` into node groups with a progress engine
    //      submitted onto each subgroup concurrently;
    //   3. a flat world collective afterwards (counters realigned).
    use sparcml::engine::{CommunicatorEngineExt, EngineConfig};
    use sparcml::net::Topology;

    let world = 8;
    let dim = 4096;
    let nnz = 128;
    let topo = Topology::uniform(2, 4).unwrap();
    let opts = LaunchOptions::for_test()
        .with_timeout(Duration::from_secs(120))
        .with_topology(topo.clone());
    let Some(results) = run_tcp_cluster(
        "tcp_hierarchical_2x4_with_engine_on_subgroup_across_processes",
        world,
        &opts,
        |tp| {
            let mut comm = Communicator::new(tp.detach());
            let rank = comm.rank();
            let input = integer_stream(rank, dim, nnz);

            // (1) Hierarchical with env-derived topology.
            let hier = comm
                .allreduce(&input)
                .algorithm(Algorithm::Hierarchical)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();

            // (2) Engine on the node subgroup.
            let env_topo = Topology::from_env(world)
                .expect("launcher exports a valid topology")
                .expect("SPARCML_NODES must be set for this job");
            let mut sub = comm.split_by_topology(&env_topo).unwrap();
            let members = sub.transport().members().to_vec();
            let mut engine = sub.engine(EngineConfig::default());
            let t0 = engine.submit_allreduce(&input);
            let t1 = engine.submit_allreduce(&input);
            let sub_first = t0.wait().unwrap();
            let sub_second = t1.wait().unwrap();
            engine.finish_into(&mut sub).unwrap();
            let mut comm = sub.into_parent();

            // (3) Flat world collective after dissolving the group.
            let flat = comm
                .allreduce(&input)
                .algorithm(Algorithm::SsarRecDbl)
                .launch()
                .and_then(|h| h.wait())
                .unwrap();
            *tp = comm.into_transport();
            format!(
                "node{:?}|hier={}|sub={}:{}|flat={}",
                members,
                fingerprint(&hier.to_dense_vec()),
                fingerprint(&sub_first.to_dense_vec()),
                fingerprint(&sub_second.to_dense_vec()),
                fingerprint(&flat.to_dense_vec()),
            )
        },
    ) else {
        return;
    };
    let ins: Vec<SparseStream<f32>> = (0..world).map(|r| integer_stream(r, dim, nnz)).collect();
    let world_fp = fingerprint(&reference_sum(&ins));
    for (rank, line) in results.iter().enumerate() {
        let members = topo.group_of(rank);
        let sub_ins: Vec<SparseStream<f32>> = members.iter().map(|&r| ins[r].clone()).collect();
        let sub_fp = fingerprint(&reference_sum(&sub_ins));
        let expect = format!(
            "node{:?}|hier={world_fp}|sub={sub_fp}:{sub_fp}|flat={world_fp}",
            members
        );
        assert_eq!(line, &expect, "rank {rank}");
    }
}
