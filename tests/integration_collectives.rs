//! Cross-crate integration tests: every collective against the sequential
//! reference, across representations, precisions, rank counts,
//! configurations — and across *transports*: the same collective programs
//! run on the virtual-time `Endpoint` and on the real-thread
//! `ThreadTransport`.

use sparcml::core::reference::reference_sum;
use sparcml::core::{
    max_communicator_time, run_communicators, run_thread_communicators, select_algorithm,
    Algorithm, AllreduceConfig, Communicator, Transport,
};
use sparcml::net::CostModel;
use sparcml::quant::QsgdConfig;
use sparcml::stream::{random_sparse, Scalar, SparseStream};

/// Runs one allreduce program on every rank of both backends and checks
/// each against the reference sum — the transport-parity harness.
fn check_algo_on_both_transports<V: Scalar>(
    algo: Algorithm,
    p: usize,
    dim: usize,
    nnz: usize,
    tol: f64,
) {
    fn program<T: Transport + Send + 'static, V: Scalar>(
        comm: &mut Communicator<T>,
        ins: &[SparseStream<V>],
        algo: Algorithm,
    ) -> SparseStream<V> {
        comm.allreduce(&ins[comm.rank()])
            .algorithm(algo)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    }
    let ins: Vec<SparseStream<V>> = (0..p)
        .map(|r| random_sparse(dim, nnz, 9000 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let virtual_outs = run_communicators(p, CostModel::zero(), |comm| program(comm, &ins, algo));
    let thread_outs = run_thread_communicators(p, |comm| program(comm, &ins, algo));
    for (backend, outs) in [("Endpoint", virtual_outs), ("ThreadTransport", thread_outs)] {
        for (rank, out) in outs.iter().enumerate() {
            assert_eq!(out.dim(), dim);
            let got = out.to_dense_vec();
            for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
                assert!(
                    (g.to_f64() - e.to_f64()).abs() < tol,
                    "{algo:?} on {backend} rank {rank} coord {i}: {g:?} vs {e:?}"
                );
            }
        }
    }
}

#[test]
fn all_algorithms_agree_with_reference_f32() {
    for algo in Algorithm::ALL {
        check_algo_on_both_transports::<f32>(algo, 8, 4096, 128, 1e-3);
    }
}

#[test]
fn all_algorithms_agree_with_reference_f64() {
    for algo in Algorithm::ALL {
        check_algo_on_both_transports::<f64>(algo, 4, 2048, 64, 1e-9);
    }
}

#[test]
fn auto_agrees_with_reference_on_both_transports() {
    // The default path: Algorithm::Auto resolves through the selector.
    check_algo_on_both_transports::<f32>(Algorithm::Auto, 8, 4096, 128, 1e-3);
    check_algo_on_both_transports::<f32>(Algorithm::Auto, 5, 1024, 512, 1e-3);
}

#[test]
fn all_algorithms_handle_two_and_one_ranks() {
    for algo in Algorithm::ALL {
        check_algo_on_both_transports::<f32>(algo, 1, 256, 16, 1e-4);
        check_algo_on_both_transports::<f32>(algo, 2, 256, 16, 1e-4);
    }
}

#[test]
fn empty_inputs_reduce_to_zero() {
    for algo in Algorithm::ALL {
        let outs = run_communicators(4, CostModel::zero(), |comm| {
            let input = SparseStream::<f32>::zeros(512);
            comm.allreduce(&input)
                .algorithm(algo)
                .launch()
                .and_then(|handle| handle.wait())
                .unwrap()
        });
        for out in outs {
            assert_eq!(out.nnz(), 0, "{algo:?}");
        }
    }
}

#[test]
fn repeated_collectives_in_one_session_do_not_cross_match() {
    // Three different allreduces back-to-back on the same communicator;
    // tags must isolate them.
    let p = 4;
    let dims = [512usize, 1024, 256];
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        let mut results = Vec::new();
        for (i, &dim) in dims.iter().enumerate() {
            let input = random_sparse::<f32>(dim, 16, (i * 100 + comm.rank()) as u64);
            let algo = match i {
                0 => Algorithm::SsarRecDbl,
                1 => Algorithm::SsarSplitAllgather,
                _ => Algorithm::SparseRing,
            };
            results.push(
                comm.allreduce(&input)
                    .algorithm(algo)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap(),
            );
        }
        results
    });
    for (i, &dim) in dims.iter().enumerate() {
        let ins: Vec<SparseStream<f32>> = (0..p)
            .map(|r| random_sparse(dim, 16, (i * 100 + r) as u64))
            .collect();
        let expect = reference_sum(&ins);
        for rank_out in &outs {
            let got = rank_out[i].to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }
}

#[test]
fn quantized_dsar_is_within_qsgd_error_bound() {
    let p = 8;
    let dim = 8192;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 512, 400 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let quant = QsgdConfig {
        bits: 8,
        bucket_size: 512,
        ..QsgdConfig::paper_default()
    };
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        comm.allreduce(&ins[comm.rank()])
            .algorithm(Algorithm::DsarSplitAllgather)
            .quantized(quant)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    });
    let max_abs = expect.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() <= max_abs / 127.0 + 1e-3, "{g} vs {e}");
        }
    }
}

#[test]
fn mixed_blocking_and_nonblocking_collectives() {
    let p = 4;
    let dim = 2048;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 64, 777 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let outs = run_communicators(p, CostModel::zero(), |comm| {
        // Blocking first…
        let first = comm
            .allreduce(&ins[comm.rank()])
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap();
        // …then a non-blocking one over the *result*; the handle returns
        // the transport to the communicator on wait.
        comm.allreduce(&first)
            .algorithm(Algorithm::SsarSplitAllgather)
            .nonblocking()
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    });
    // Second reduction sums the (identical) first results: P × first.
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            let scaled = e * p as f32;
            assert!((g - scaled).abs() < 1e-2, "{g} vs {scaled}");
        }
    }
}

#[test]
fn per_algorithm_entry_points_match_builder() {
    // The generic per-algorithm functions stay public; they must agree
    // with the builder path bit-for-bit.
    let p = 4;
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(1024, 32, 31 + r as u64))
        .collect();
    let via_builder = run_communicators(p, CostModel::zero(), |comm| {
        comm.allreduce(&ins[comm.rank()])
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    });
    let direct = sparcml::net::run_cluster(p, CostModel::zero(), |ep| {
        sparcml::core::ssar_recursive_double(
            ep,
            &ins[Transport::rank(ep)],
            &AllreduceConfig::default(),
        )
        .unwrap()
    });
    assert_eq!(via_builder, direct);
}

#[test]
fn auto_round_trips_through_select_algorithm() {
    // Algorithm::Auto must dispatch exactly what select_algorithm picks
    // for the agreed workload (all ranks share k here, so the agreement
    // step is the identity).
    let cost = CostModel::aries();
    for &(p, n, k) in &[
        (8usize, 1 << 16, 1 << 6),
        (8, 1 << 16, 1 << 12),
        (4, 1 << 14, 1 << 11),
    ] {
        let resolved = Algorithm::Auto.resolve_for::<f32>(p, n, k, &cost);
        let expected = select_algorithm::<f32>(p, n, k, &cost);
        assert_eq!(resolved, expected, "P={p} N={n} k={k}");
        assert!(
            !resolved.is_auto(),
            "Auto must resolve to a concrete schedule"
        );

        // And the dispatched result matches the pinned choice exactly —
        // same schedule, same floating-point summation order.
        let ins: Vec<SparseStream<f32>> =
            (0..p).map(|r| random_sparse(n, k, 5 + r as u64)).collect();
        let auto_outs = run_communicators(p, cost, |comm| {
            comm.allreduce(&ins[comm.rank()])
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        let pinned_outs = run_communicators(p, cost, |comm| {
            comm.allreduce(&ins[comm.rank()])
                .algorithm(expected)
                .launch()
                .and_then(|h| h.wait())
                .unwrap()
        });
        assert_eq!(
            auto_outs, pinned_outs,
            "P={p} N={n} k={k} chose {expected:?}"
        );
    }
}

#[test]
fn selector_choice_is_never_far_from_best() {
    // For a few workloads, the adaptive choice must be within 2x of the
    // best measured algorithm (it is allowed to be approximate).
    let cost = CostModel::aries();
    for &(p, n, k) in &[
        (8usize, 1 << 16, 1 << 6),
        (8, 1 << 16, 1 << 12),
        (16, 1 << 14, 1 << 11),
    ] {
        let chosen = select_algorithm::<f32>(p, n, k, &cost);
        let measure = |algo: Algorithm| {
            max_communicator_time(p, cost, move |comm| {
                let input = random_sparse::<f32>(n, k, 5 + comm.rank() as u64);
                comm.allreduce(&input)
                    .algorithm(algo)
                    .launch()
                    .and_then(|handle| handle.wait())
                    .unwrap();
            })
        };
        let t_chosen = measure(chosen);
        let t_best = Algorithm::ALL
            .iter()
            .map(|a| measure(*a))
            .fold(f64::INFINITY, f64::min);
        assert!(
            t_chosen <= t_best * 2.0 + 1e-9,
            "P={p} N={n} k={k}: chose {chosen:?} at {t_chosen}, best {t_best}"
        );
    }
}

#[test]
fn allgather_integration_round_trip() {
    let p = 6;
    let outs = run_communicators(p, CostModel::aries(), |comm| {
        let mine = random_sparse::<f32>(4096, 32, 31 + comm.rank() as u64);
        comm.allgather(&mine)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap()
    });
    for ranks in &outs {
        assert_eq!(ranks.len(), p);
        for (r, s) in ranks.iter().enumerate() {
            assert_eq!(s, &random_sparse::<f32>(4096, 32, 31 + r as u64));
        }
    }
}

#[test]
fn rooted_collectives_compose_on_both_transports() {
    let p = 6;
    let dim = 2048;
    fn program<T: Transport + Send + 'static>(
        comm: &mut Communicator<T>,
        ins: &[SparseStream<f32>],
    ) -> SparseStream<f32> {
        let reduced = comm
            .reduce(&ins[comm.rank()], 1)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        comm.broadcast(&reduced, 1)
            .launch()
            .and_then(|h| h.wait())
            .unwrap()
    }
    let ins: Vec<SparseStream<f32>> = (0..p)
        .map(|r| random_sparse(dim, 48, 61 + r as u64))
        .collect();
    let expect = reference_sum(&ins);
    let virtual_outs = run_communicators(p, CostModel::zero(), |comm| program(comm, &ins));
    let thread_outs = run_thread_communicators(p, |comm| program(comm, &ins));
    for outs in [virtual_outs, thread_outs] {
        for out in outs {
            for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }
}

#[test]
fn dense_result_is_identical_across_algorithms_for_integer_values() {
    // With integer-valued inputs every summation order gives the same
    // bits, so all algorithms must agree exactly.
    let p = 8;
    let dim = 2048;
    let mk = |rank: usize| {
        let pairs: Vec<(u32, f32)> = (0..64)
            .map(|i| (((rank * 31 + i * 7) % dim) as u32, 1.0f32))
            .collect();
        SparseStream::from_pairs(dim, &pairs).unwrap()
    };
    let mut reference: Option<Vec<f32>> = None;
    for algo in Algorithm::ALL {
        let outs = run_communicators(p, CostModel::zero(), |comm| {
            comm.allreduce(&mk(comm.rank()))
                .algorithm(algo)
                .launch()
                .and_then(|handle| handle.wait())
                .unwrap()
        });
        let dense = outs[0].to_dense_vec();
        match &reference {
            None => reference = Some(dense),
            Some(r) => assert_eq!(&dense, r, "{algo:?} disagrees"),
        }
    }
}
