//! Cross-crate integration tests: every collective against the sequential
//! reference, across representations, precisions, rank counts and
//! configurations.

use sparcml::core::reference::reference_sum;
use sparcml::core::{
    allreduce, iallreduce, select_algorithm, sparse_allgather, Algorithm, AllreduceConfig,
};
use sparcml::net::{max_virtual_time, run_cluster, CostModel};
use sparcml::quant::QsgdConfig;
use sparcml::stream::{random_sparse, Scalar, SparseStream};

fn check_algo<V: Scalar>(algo: Algorithm, p: usize, dim: usize, nnz: usize, tol: f64) {
    let ins: Vec<SparseStream<V>> =
        (0..p).map(|r| random_sparse(dim, nnz, 9000 + r as u64)).collect();
    let expect = reference_sum(&ins);
    let outs = run_cluster(p, CostModel::zero(), |ep| {
        allreduce(ep, &ins[ep.rank()], algo, &AllreduceConfig::default()).unwrap()
    });
    for (rank, out) in outs.iter().enumerate() {
        assert_eq!(out.dim(), dim);
        let got = out.to_dense_vec();
        for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
            assert!(
                (g.to_f64() - e.to_f64()).abs() < tol,
                "{algo:?} rank {rank} coord {i}: {g:?} vs {e:?}"
            );
        }
    }
}

#[test]
fn all_algorithms_agree_with_reference_f32() {
    for algo in Algorithm::ALL {
        check_algo::<f32>(algo, 8, 4096, 128, 1e-3);
    }
}

#[test]
fn all_algorithms_agree_with_reference_f64() {
    for algo in Algorithm::ALL {
        check_algo::<f64>(algo, 4, 2048, 64, 1e-9);
    }
}

#[test]
fn all_algorithms_handle_non_power_of_two_ranks() {
    for algo in Algorithm::ALL {
        for p in [3usize, 5, 6, 7] {
            check_algo::<f32>(algo, p, 1024, 32, 1e-3);
        }
    }
}

#[test]
fn all_algorithms_handle_two_and_one_ranks() {
    for algo in Algorithm::ALL {
        check_algo::<f32>(algo, 1, 256, 16, 1e-4);
        check_algo::<f32>(algo, 2, 256, 16, 1e-4);
    }
}

#[test]
fn empty_inputs_reduce_to_zero() {
    for algo in Algorithm::ALL {
        let outs = run_cluster(4, CostModel::zero(), |ep| {
            let input = SparseStream::<f32>::zeros(512);
            allreduce(ep, &input, algo, &AllreduceConfig::default()).unwrap()
        });
        for out in outs {
            assert_eq!(out.nnz(), 0, "{algo:?}");
        }
    }
}

#[test]
fn repeated_collectives_in_one_session_do_not_cross_match() {
    // Three different allreduces back-to-back on the same endpoints; tags
    // must isolate them.
    let p = 4;
    let dims = [512usize, 1024, 256];
    let outs = run_cluster(p, CostModel::zero(), |ep| {
        let mut results = Vec::new();
        for (i, &dim) in dims.iter().enumerate() {
            let input = random_sparse::<f32>(dim, 16, (i * 100 + ep.rank()) as u64);
            let algo = match i {
                0 => Algorithm::SsarRecDbl,
                1 => Algorithm::SsarSplitAllgather,
                _ => Algorithm::SparseRing,
            };
            results.push(allreduce(ep, &input, algo, &AllreduceConfig::default()).unwrap());
        }
        results
    });
    for (i, &dim) in dims.iter().enumerate() {
        let ins: Vec<SparseStream<f32>> =
            (0..p).map(|r| random_sparse(dim, 16, (i * 100 + r) as u64)).collect();
        let expect = reference_sum(&ins);
        for rank_out in &outs {
            let got = rank_out[i].to_dense_vec();
            for (g, e) in got.iter().zip(expect.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }
}

#[test]
fn quantized_dsar_is_within_qsgd_error_bound() {
    let p = 8;
    let dim = 8192;
    let ins: Vec<SparseStream<f32>> =
        (0..p).map(|r| random_sparse(dim, 512, 400 + r as u64)).collect();
    let expect = reference_sum(&ins);
    let cfg = AllreduceConfig {
        quant: Some(QsgdConfig { bits: 8, bucket_size: 512, ..QsgdConfig::paper_default() }),
        ..Default::default()
    };
    let outs = run_cluster(p, CostModel::zero(), |ep| {
        allreduce(ep, &ins[ep.rank()], Algorithm::DsarSplitAllgather, &cfg).unwrap()
    });
    let max_abs = expect.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(expect.iter()) {
            assert!((g - e).abs() <= max_abs / 127.0 + 1e-3, "{g} vs {e}");
        }
    }
}

#[test]
fn mixed_blocking_and_nonblocking_collectives() {
    let p = 4;
    let dim = 2048;
    let ins: Vec<SparseStream<f32>> =
        (0..p).map(|r| random_sparse(dim, 64, 777 + r as u64)).collect();
    let expect = reference_sum(&ins);
    let double_expect: Vec<f32> = expect.iter().map(|v| v * 2.0).collect();
    let outs = run_cluster(p, CostModel::zero(), |ep| {
        // Blocking first…
        let first =
            allreduce(ep, &ins[ep.rank()], Algorithm::SsarRecDbl, &AllreduceConfig::default())
                .unwrap();
        // …then a non-blocking one over the *result*.
        let req = iallreduce(
            ep.detach(),
            first,
            Algorithm::SsarSplitAllgather,
            AllreduceConfig::default(),
        );
        let (ep_back, second) = req.wait().unwrap();
        *ep = ep_back;
        second
    });
    // Second reduction sums the (identical) first results: P × first.
    for out in outs {
        for (g, e) in out.to_dense_vec().iter().zip(double_expect.iter()) {
            let scaled = e * (p as f32 / 2.0);
            assert!((g - scaled).abs() < 1e-2, "{g} vs {scaled}");
        }
    }
}

#[test]
fn selector_choice_is_never_far_from_best() {
    // For a few workloads, the adaptive choice must be within 2x of the
    // best measured algorithm (it is allowed to be approximate).
    let cost = CostModel::aries();
    for &(p, n, k) in &[(8usize, 1 << 16, 1 << 6), (8, 1 << 16, 1 << 12), (16, 1 << 14, 1 << 11)] {
        let chosen = select_algorithm::<f32>(p, n, k, &cost);
        let measure = |algo: Algorithm| {
            max_virtual_time(p, cost, move |ep| {
                let input = random_sparse::<f32>(n, k, 5 + ep.rank() as u64);
                allreduce(ep, &input, algo, &AllreduceConfig::default()).unwrap();
            })
        };
        let t_chosen = measure(chosen);
        let t_best = Algorithm::ALL.iter().map(|a| measure(*a)).fold(f64::INFINITY, f64::min);
        assert!(
            t_chosen <= t_best * 2.0 + 1e-9,
            "P={p} N={n} k={k}: chose {chosen:?} at {t_chosen}, best {t_best}"
        );
    }
}

#[test]
fn allgather_integration_round_trip() {
    let p = 6;
    let outs = run_cluster(p, CostModel::aries(), |ep| {
        let mine = random_sparse::<f32>(4096, 32, 31 + ep.rank() as u64);
        sparse_allgather(ep, &mine).unwrap()
    });
    for ranks in &outs {
        assert_eq!(ranks.len(), p);
        for (r, s) in ranks.iter().enumerate() {
            assert_eq!(s, &random_sparse::<f32>(4096, 32, 31 + r as u64));
        }
    }
}

#[test]
fn dense_result_is_identical_across_algorithms_for_integer_values() {
    // With integer-valued inputs every summation order gives the same
    // bits, so all algorithms must agree exactly.
    let p = 8;
    let dim = 2048;
    let mk = |rank: usize| {
        let pairs: Vec<(u32, f32)> =
            (0..64).map(|i| (((rank * 31 + i * 7) % dim) as u32, 1.0f32)).collect();
        SparseStream::from_pairs(dim, &pairs).unwrap()
    };
    let mut reference: Option<Vec<f32>> = None;
    for algo in Algorithm::ALL {
        let outs = run_cluster(p, CostModel::zero(), |ep| {
            allreduce(ep, &mk(ep.rank()), algo, &AllreduceConfig::default()).unwrap()
        });
        let dense = outs[0].to_dense_vec();
        match &reference {
            None => reference = Some(dense),
            Some(r) => assert_eq!(&dense, r, "{algo:?} disagrees"),
        }
    }
}
