//! Facade crate re-exporting the SparCML workspace public API.
//!
//! The documented entry point is the [`Communicator`] session: one object
//! per rank whose collectives are fluent builders, running over any
//! [`Transport`] backend ([`Endpoint`] virtual-time, [`ThreadTransport`]
//! real threads, [`TcpTransport`] real sockets across OS processes via
//! the `sparcml_net::launcher` or the `SPARCML_*` env bootstrap), with
//! `Algorithm::Auto` — the paper's §5.3 adaptive
//! selector — as the default schedule. Sparse payloads use a
//! structure-of-arrays layout (index slab + value slab) with a bulk slab
//! wire codec and pooled message buffers; see the README's architecture
//! section for the layout and the buffer-pool lifecycle.
//!
//! The [`serve`] module is the other deployment shape: a long-running
//! sharded aggregation daemon ([`Server`] / [`ShardGroup`]) that many
//! transient [`ServeClient`] sessions push sparse contributions into,
//! with typed backpressure and watchdog-reaped membership churn.

pub use sparcml_core as core;
pub use sparcml_engine as engine;
pub use sparcml_net as net;
pub use sparcml_obs as obs;
pub use sparcml_opt as opt;
pub use sparcml_quant as quant;
pub use sparcml_serve as serve;
pub use sparcml_stream as stream;
pub use sparcml_trainsim as trainsim;

pub use sparcml_core::{
    max_communicator_time, run_communicators, run_reactor_communicators, run_tcp_communicators,
    run_thread_communicators, Algorithm, CollectiveHandle, Communicator, Endpoint, GroupTransport,
    ReactorTransport, SocketTransport, TcpTransport, ThreadTransport, Topology, TopologyCostModel,
    Transport, TransportBackend, TransportConfig,
};
pub use sparcml_engine::{CommunicatorEngineExt, Engine, EngineConfig, FusionPolicy, Ticket};
pub use sparcml_serve::{
    AggregationMode, ServeClient, ServeConfig, ServeError, Server, ServerHandle, ShardGroup,
};
