//! Facade crate re-exporting the SparCML workspace public API.
//!
//! The documented entry point is the [`Communicator`] session: one object
//! per rank whose collectives are fluent builders, running over any
//! [`Transport`] backend ([`Endpoint`] virtual-time, [`ThreadTransport`]
//! real threads), with `Algorithm::Auto` — the paper's §5.3 adaptive
//! selector — as the default schedule. See the README for a quickstart
//! and the migration table from the 0.1 free-function API.

pub use sparcml_core as core;
pub use sparcml_net as net;
pub use sparcml_opt as opt;
pub use sparcml_quant as quant;
pub use sparcml_stream as stream;
pub use sparcml_trainsim as trainsim;

pub use sparcml_core::{
    max_communicator_time, run_communicators, run_thread_communicators, Algorithm,
    CollectiveHandle, Communicator, Endpoint, ThreadTransport, Transport,
};
