//! Facade crate re-exporting the SparCML workspace public API.
pub use sparcml_core as core;
pub use sparcml_net as net;
pub use sparcml_opt as opt;
pub use sparcml_quant as quant;
pub use sparcml_stream as stream;
pub use sparcml_trainsim as trainsim;
