//! Non-blocking collectives: overlapping gradient exchange with compute
//! (§7 of the paper; the mechanism behind CNTK's layer-wise overlap).
//!
//! Run with `cargo run --release --example nonblocking_pipeline`.
//!
//! Each rank launches an `iallreduce` for one "layer" gradient, computes
//! the next layer's gradient while the exchange is in flight, then waits.
//! The virtual clocks show the overlap: total time ≈ max(compute, comm)
//! instead of compute + comm.

use sparcml::core::{iallreduce, Algorithm, AllreduceConfig};
use sparcml::net::{run_cluster, CostModel};
use sparcml::stream::random_sparse;

fn main() {
    let p = 4;
    let dim = 1_000_000;
    let nnz = 120_000;
    let compute_elements = 25_000_000usize; // simulated backward pass work

    // Blocking version: compute, then exchange.
    let t_blocking = sparcml::net::max_virtual_time(p, CostModel::gige(), |ep| {
        let grad = random_sparse::<f32>(dim, nnz, ep.rank() as u64);
        ep.compute(compute_elements);
        let _ = sparcml::core::allreduce(
            ep,
            &grad,
            Algorithm::SsarRecDbl,
            &AllreduceConfig::default(),
        )
        .unwrap();
    });

    // Non-blocking version: exchange overlaps the compute.
    let t_overlap = run_cluster(p, CostModel::gige(), |ep| {
        let grad = random_sparse::<f32>(dim, nnz, ep.rank() as u64);
        let mut req = iallreduce(
            ep.detach(),
            grad,
            Algorithm::SsarRecDbl,
            AllreduceConfig::default(),
        );
        req.compute(compute_elements); // overlapped local work
        let (ep_back, _sum) = req.wait().unwrap();
        *ep = ep_back;
        ep.clock()
    })
    .into_iter()
    .fold(0.0f64, f64::max);

    println!("blocking   (compute then allreduce): {:.2} ms", t_blocking * 1e3);
    println!("nonblocking (allreduce || compute):  {:.2} ms", t_overlap * 1e3);
    println!("overlap saves {:.0}%", (1.0 - t_overlap / t_blocking) * 100.0);
}
