//! Non-blocking collectives: overlapping gradient exchange with compute
//! (§7 of the paper; the mechanism behind CNTK's layer-wise overlap).
//!
//! Run with `cargo run --release --example nonblocking_pipeline`.
//!
//! Each rank launches its "layer" allreduce with `.nonblocking()`,
//! accounts the next layer's gradient computation on the handle while the
//! exchange is in flight, then waits. The virtual clocks show the
//! overlap: total time ≈ max(compute, comm) instead of compute + comm.

use sparcml::core::{max_communicator_time, Algorithm};
use sparcml::net::CostModel;
use sparcml::stream::random_sparse;

fn main() {
    let p = 4;
    let dim = 1_000_000;
    let nnz = 120_000;
    let compute_elements = 25_000_000usize; // simulated backward pass work

    // Blocking version: compute, then exchange.
    let t_blocking = max_communicator_time(p, CostModel::gige(), |comm| {
        let grad = random_sparse::<f32>(dim, nnz, comm.rank() as u64);
        comm.compute(compute_elements);
        let _ = comm
            .allreduce(&grad)
            .algorithm(Algorithm::SsarRecDbl)
            .launch()
            .and_then(|handle| handle.wait())
            .unwrap();
    });

    // Non-blocking version: exchange overlaps the compute. The handle
    // reinstalls the transport into the communicator on wait().
    let t_overlap = max_communicator_time(p, CostModel::gige(), |comm| {
        let grad = random_sparse::<f32>(dim, nnz, comm.rank() as u64);
        let mut handle = comm
            .allreduce(&grad)
            .algorithm(Algorithm::SsarRecDbl)
            .nonblocking()
            .launch()
            .unwrap();
        handle.compute(compute_elements); // overlapped local work
        let _sum = handle.wait().unwrap();
    });

    println!(
        "blocking   (compute then allreduce): {:.2} ms",
        t_blocking * 1e3
    );
    println!(
        "nonblocking (allreduce || compute):  {:.2} ms",
        t_overlap * 1e3
    );
    println!(
        "overlap saves {:.0}%",
        (1.0 - t_overlap / t_blocking) * 100.0
    );
}
