//! End-to-end observability demo (and the CI acceptance check for it):
//! a 4-process cluster on the reactor backend runs instrumented
//! collectives — blocking, non-blocking, and an engine batch — under
//! `SPARCML_TRACE` + `SPARCML_TELEMETRY`. Each rank flushes
//! `trace-rank{r}.json` and `telemetry-rank{r}.json` on orderly
//! shutdown, the launcher merges the traces into one Chrome trace — and
//! this binary then re-opens the merged file and asserts it is valid
//! JSON carrying spans from *every* rank, flow-event arrows between
//! ranks, and named lanes for the engine / reactor / non-blocking
//! worker threads.
//!
//! Run it:
//!
//! ```text
//! cargo run --release --example trace_observability
//! ```
//!
//! then load `target/trace-demo/trace-merged.json` at <https://ui.perfetto.dev>
//! (or `chrome://tracing`). One process track per rank; engine,
//! reactor, and non-blocking helper threads appear as labeled rows, and
//! enabling "Flow events" draws the send→recv arrows. `sparcml-doctor
//! target/trace-demo` turns the same directory into a cluster report.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use sparcml::core::{Algorithm, Communicator};
use sparcml::engine::{CommunicatorEngineExt, EngineConfig};
use sparcml::net::{run_socket_cluster, LaunchOptions, Transport, TransportBackend};
use sparcml::obs;
use sparcml::stream::random_sparse;

const WORLD: usize = 4;
const DIM: usize = 1 << 14;
const NNZ: usize = 512;

fn trace_dir() -> PathBuf {
    // Honor an explicit SPARCML_TRACE (the workers see it either way);
    // default somewhere disposable.
    obs::trace_env_dir().unwrap_or_else(|| PathBuf::from("target/trace-demo"))
}

fn main() {
    let dir = trace_dir();
    let opts = LaunchOptions::default()
        .with_timeout(Duration::from_secs(120))
        .with_transport(TransportBackend::Reactor)
        .with_trace_dir(&dir)
        .with_telemetry_dir(&dir);

    let Some(results) = run_socket_cluster("trace_observability", WORLD, &opts, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let rank = comm.rank();

        // Direct collectives: Auto + a pinned schedule, so the trace
        // carries both agreement and per-round phase spans.
        let input = random_sparse::<f32>(DIM, NNZ, 42 + rank as u64);
        for _ in 0..3 {
            comm.allreduce(&input)
                .launch()
                .and_then(|h| h.wait())
                .expect("allreduce");
        }

        // One non-blocking collective: the transport hops to a
        // `sparcml-nb-{rank}` helper thread, which must appear as its
        // own labeled lane in the trace.
        comm.allreduce(&input)
            .algorithm(Algorithm::SsarRecDbl)
            .nonblocking()
            .launch()
            .and_then(|h| h.wait())
            .expect("non-blocking allreduce");

        // One engine batch: submit → agreement → bucket-plan → fuse →
        // execute → split, recorded on the progress thread's track.
        let mut engine = comm.engine::<f32>(EngineConfig::default());
        let tickets: Vec<_> = (0..4)
            .map(|i| engine.submit_allreduce(&random_sparse::<f32>(DIM, NNZ, 7 * i + rank as u64)))
            .collect();
        for t in tickets {
            t.wait().expect("engine allreduce");
        }
        engine.finish_into(&mut comm).expect("engine shutdown");

        // Telemetry: collection is on (SPARCML_TELEMETRY), so the
        // cluster report must agree on the membership.
        let report = comm.cluster_report().expect("cluster report");
        assert_eq!(report.ranks().len(), WORLD, "all ranks reporting");

        *tp = comm.into_transport();
        "ok".to_string()
    }) else {
        return; // worker rank: the parent does the asserting
    };
    assert_eq!(results.len(), WORLD);

    // --- Parent: validate the merged trace. ---
    let merged = dir.join(obs::MERGED_TRACE_FILE);
    let raw = std::fs::read_to_string(&merged)
        .unwrap_or_else(|e| panic!("merged trace {} unreadable: {e}", merged.display()));
    let doc = obs::json::parse(&raw).expect("merged trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");

    let mut pids = BTreeSet::new();
    let mut names = BTreeSet::new();
    let mut threads = BTreeSet::new();
    let (mut flow_starts, mut flow_finishes) = (0usize, 0usize);
    for e in events {
        match e.get("ph").and_then(|v| v.as_str()) {
            Some("X") => {
                let pid = e.get("pid").and_then(|v| v.as_f64()).expect("X event pid") as usize;
                pids.insert(pid);
                if let Some(name) = e.get("name").and_then(|v| v.as_str()) {
                    names.insert(name.to_string());
                }
            }
            Some("M") if e.get("name").and_then(|v| v.as_str()) == Some("thread_name") => {
                if let Some(n) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                {
                    threads.insert(n.to_string());
                }
            }
            Some("s") => flow_starts += 1,
            Some("f") => flow_finishes += 1,
            _ => {}
        }
    }
    let expect_pids: BTreeSet<usize> = (0..WORLD).collect();
    assert_eq!(pids, expect_pids, "spans from every rank");
    for required in [
        "auto-resolve", // Auto's agreement span
        "encode-send",  // per-round collective phases
        "recv-decode",
        "merge",
        "agree-batch", // engine lifecycle
        "batch",
        "bucket-plan",
        "fuse",
        "execute",
        "split",
        "submit",
    ] {
        assert!(
            names.contains(required),
            "merged trace is missing '{required}' spans; have {names:?}"
        );
    }
    // Worker-thread lanes are labeled: engine progress threads,
    // reactor event loops, and non-blocking helpers registered their
    // names even where they recorded few spans of their own.
    for lane in ["sparcml-engine-0", "sparcml-reactor-0", "sparcml-nb-0"] {
        assert!(
            threads.contains(lane),
            "merged trace is missing the '{lane}' thread lane; have {threads:?}"
        );
    }
    // Cross-rank correlation: send spans opened flow arrows and recv
    // spans terminated them.
    assert!(flow_starts > 0, "no flow-start events in the merged trace");
    assert!(
        flow_finishes > 0,
        "no flow-finish events in the merged trace"
    );
    // The span-drop footer survived the merge.
    let dropped = doc
        .get("sparcml")
        .and_then(|s| s.get("droppedSpans"))
        .and_then(|v| v.as_f64())
        .expect("sparcml.droppedSpans footer");
    assert!(dropped >= 0.0);

    // --- Parent: the telemetry files reconstruct the cluster view. ---
    let report = obs::load_telemetry_dir(&dir, WORLD).expect("load telemetry dir");
    assert_eq!(
        report.ranks(),
        (0..WORLD as u32).collect::<Vec<_>>(),
        "telemetry frame from every rank"
    );

    println!(
        "trace OK: {} events from ranks {:?} ({} flow arrows, {} thread lanes) -> {}",
        events.len(),
        pids,
        flow_starts,
        threads.len(),
        merged.display()
    );
    println!(
        "telemetry OK: {} ranks reporting -> {}",
        report.frames.len(),
        dir.display()
    );
    println!("open the trace at https://ui.perfetto.dev");
}
