//! End-to-end span-tracing demo (and the CI acceptance check for it):
//! a 4-process TCP cluster runs instrumented collectives and an engine
//! batch under `SPARCML_TRACE`, each rank flushes `trace-rank{r}.json`
//! on orderly shutdown, the launcher merges them into one Chrome trace —
//! and this binary then re-opens the merged file and asserts it is valid
//! JSON carrying spans from *every* rank, including engine batch and
//! collective phase spans.
//!
//! Run it:
//!
//! ```text
//! cargo run --release --example trace_observability
//! ```
//!
//! then load `target/trace-demo/trace-merged.json` at <https://ui.perfetto.dev>
//! (or `chrome://tracing`). One process track per rank; the engine's
//! progress thread and the session thread appear as separate rows.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use sparcml::core::Communicator;
use sparcml::engine::{CommunicatorEngineExt, EngineConfig};
use sparcml::net::{run_tcp_cluster, LaunchOptions, Transport};
use sparcml::obs;
use sparcml::stream::random_sparse;

const WORLD: usize = 4;
const DIM: usize = 1 << 14;
const NNZ: usize = 512;

fn trace_dir() -> PathBuf {
    // Honor an explicit SPARCML_TRACE (the workers see it either way);
    // default somewhere disposable.
    obs::trace_env_dir().unwrap_or_else(|| PathBuf::from("target/trace-demo"))
}

fn main() {
    let dir = trace_dir();
    let opts = LaunchOptions::default()
        .with_timeout(Duration::from_secs(120))
        .with_trace_dir(&dir);

    let Some(results) = run_tcp_cluster("trace_observability", WORLD, &opts, |tp| {
        let mut comm = Communicator::new(tp.detach());
        let rank = comm.rank();

        // Direct collectives: Auto + a pinned schedule, so the trace
        // carries both agreement and per-round phase spans.
        let input = random_sparse::<f32>(DIM, NNZ, 42 + rank as u64);
        for _ in 0..3 {
            comm.allreduce(&input)
                .launch()
                .and_then(|h| h.wait())
                .expect("allreduce");
        }

        // One engine batch: submit → agreement → bucket-plan → fuse →
        // execute → split, recorded on the progress thread's track.
        let mut engine = comm.engine::<f32>(EngineConfig::default());
        let tickets: Vec<_> = (0..4)
            .map(|i| engine.submit_allreduce(&random_sparse::<f32>(DIM, NNZ, 7 * i + rank as u64)))
            .collect();
        for t in tickets {
            t.wait().expect("engine allreduce");
        }
        engine.finish_into(&mut comm).expect("engine shutdown");

        *tp = comm.into_transport();
        "ok".to_string()
    }) else {
        return; // worker rank: the parent does the asserting
    };
    assert_eq!(results.len(), WORLD);

    // --- Parent: validate the merged trace. ---
    let merged = dir.join(obs::MERGED_TRACE_FILE);
    let raw = std::fs::read_to_string(&merged)
        .unwrap_or_else(|e| panic!("merged trace {} unreadable: {e}", merged.display()));
    let doc = obs::json::parse(&raw).expect("merged trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");

    let mut pids = BTreeSet::new();
    let mut names = BTreeSet::new();
    for e in events {
        if e.get("ph").and_then(|v| v.as_str()) != Some("X") {
            continue;
        }
        let pid = e.get("pid").and_then(|v| v.as_f64()).expect("X event pid") as usize;
        pids.insert(pid);
        if let Some(name) = e.get("name").and_then(|v| v.as_str()) {
            names.insert(name.to_string());
        }
    }
    let expect_pids: BTreeSet<usize> = (0..WORLD).collect();
    assert_eq!(pids, expect_pids, "spans from every rank");
    for required in [
        "auto-resolve", // Auto's agreement span
        "encode-send",  // per-round collective phases
        "recv-decode",
        "merge",
        "agree-batch", // engine lifecycle
        "batch",
        "bucket-plan",
        "fuse",
        "execute",
        "split",
        "submit",
    ] {
        assert!(
            names.contains(required),
            "merged trace is missing '{required}' spans; have {names:?}"
        );
    }

    println!(
        "trace OK: {} events from ranks {:?} -> {}",
        events.len(),
        pids,
        merged.display()
    );
    println!("open it at https://ui.perfetto.dev");
}
