//! Quantized Top-k SGD (Algorithm 1 of the paper) on a neural network.
//!
//! Run with `cargo run --release --example topk_dnn`.
//!
//! Trains an MLP replica on every rank; gradients are compressed with
//! bucket-wise Top-k + error feedback and reduced with a sparse
//! collective; a 4-bit QSGD variant shows the combined scheme. The
//! point to observe: compressed runs track the dense accuracy while
//! sending orders of magnitude fewer bytes.

use sparcml::net::CostModel;
use sparcml::opt::data::generate_dense_images_noisy;
use sparcml::opt::{train_mlp_distributed, Compression, LrSchedule, NnTrainConfig, TopKConfig};
use sparcml::quant::QsgdConfig;

fn main() {
    let dim = 256;
    let classes = 10;
    let dataset = generate_dense_images_noisy(dim, classes, 1024, 0.7, 9);
    let p = 4;
    let base = NnTrainConfig {
        lr: LrSchedule::Const(0.2),
        epochs: 6,
        batch_per_node: 16,
        ..Default::default()
    };

    let variants: Vec<(&str, Compression)> = vec![
        ("dense 32-bit", Compression::Dense),
        (
            "topk 8/512 + error feedback",
            Compression::TopK(TopKConfig {
                k_per_bucket: 8,
                bucket_size: 512,
            }),
        ),
        (
            "topk 8/512 + 4-bit QSGD",
            Compression::TopKQuant(
                TopKConfig {
                    k_per_bucket: 8,
                    bucket_size: 512,
                },
                QsgdConfig::with_bits(4),
            ),
        ),
    ];

    for (name, compression) in variants {
        let cfg = NnTrainConfig {
            compression,
            ..base.clone()
        };
        let (_, stats) =
            train_mlp_distributed(&dataset, &[dim, 128, classes], p, CostModel::aries(), &cfg);
        let last = stats.last().unwrap();
        println!(
            "{name:<30} final acc {:.1}%  loss {:.3}  bytes/epoch {:>10}  comm {:.2} ms",
            last.accuracy * 100.0,
            last.loss,
            last.bytes_sent,
            last.comm_time * 1e3,
        );
    }
}
