//! Large-scale sparse logistic regression with MPI-OPT (§8.2 scenario).
//!
//! Run with `cargo run --release --example sparse_logreg`.
//!
//! Trains a logistic-regression classifier on a synthetic URL-like
//! dataset (3.2M-dimensional trigram features, scaled down by default)
//! across 8 ranks, exploiting the *natural* sparsity of the gradients —
//! no sparsification, communication is lossless — and reports the
//! epoch-time split between the dense baseline and SparCML.

use sparcml::core::Algorithm;
use sparcml::net::CostModel;
use sparcml::opt::data::{generate_sparse, SparseGenConfig};
use sparcml::opt::sgd::{train_distributed, SgdConfig};
use sparcml::opt::LrSchedule;

fn main() {
    let mut gen = SparseGenConfig::url_like(4096);
    gen.dim = 200_000; // scaled from 3 231 961; raise to taste
    let dataset = generate_sparse(&gen);
    println!(
        "dataset: {} samples x {} features, avg nnz/sample {:.0}",
        dataset.samples.len(),
        dataset.dim,
        dataset.avg_nnz()
    );

    let p = 8;
    let cost = CostModel::aries();
    let mk = |algo| SgdConfig {
        lr: LrSchedule::Const(1.0),
        batch_per_node: 128,
        epochs: 5,
        algorithm: algo,
        ..Default::default()
    };

    for (name, algo) in [
        ("dense MPI baseline", Algorithm::DenseRabenseifner),
        ("SSAR_Recursive_double", Algorithm::SsarRecDbl),
        ("SSAR_Split_allgather", Algorithm::SsarSplitAllgather),
        ("Auto (adaptive §5.3)", Algorithm::Auto),
    ] {
        let result = train_distributed(&dataset, p, cost, &mk(algo));
        let last = result.epochs.last().unwrap();
        let avg_t: f64 =
            result.epochs.iter().map(|e| e.total_time).sum::<f64>() / result.epochs.len() as f64;
        let avg_c: f64 =
            result.epochs.iter().map(|e| e.comm_time).sum::<f64>() / result.epochs.len() as f64;
        println!(
            "{name:<24} epoch {:.2} ms (comm {:.2} ms)   loss {:.4}  acc {:.1}%",
            avg_t * 1e3,
            avg_c * 1e3,
            last.loss,
            last.accuracy * 100.0
        );
    }
    println!("\n(convergence is identical across rows: sparse collectives are lossless)");
}
