//! Quickstart: sparse allreduce across an in-process cluster.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Eight ranks each contribute a sparse gradient over a 10M-dimensional
//! space; SparCML reduces them with sparse recursive doubling, and we
//! compare the virtual completion time against the dense baseline on the
//! same (simulated) Aries-class network.

use sparcml::core::{allreduce, Algorithm, AllreduceConfig};
use sparcml::net::{run_cluster, CostModel};
use sparcml::stream::{random_sparse, SparseStream};

fn main() {
    let p = 8;
    let dim = 10_000_000;
    let nnz = 20_000; // 0.2% density per rank

    // Run the sparse allreduce: every rank gets the global sum.
    let results = run_cluster(p, CostModel::aries(), |ep| {
        let grad: SparseStream<f32> = random_sparse(dim, nnz, 42 + ep.rank() as u64);
        let sum = allreduce(ep, &grad, Algorithm::SsarRecDbl, &AllreduceConfig::default())
            .expect("allreduce");
        (sum.nnz(), ep.clock(), ep.stats().bytes_sent)
    });
    let (k_reduced, t_sparse, bytes) = results[0];
    println!("reduced support: {k_reduced} of {dim} coordinates");
    println!("sparse allreduce: {:.3} ms virtual, {} KiB sent per rank", t_sparse * 1e3, bytes / 1024);

    // Dense baseline for comparison.
    let t_dense = sparcml::net::max_virtual_time(p, CostModel::aries(), |ep| {
        let grad: SparseStream<f32> = random_sparse(dim, nnz, 42 + ep.rank() as u64);
        allreduce(ep, &grad, Algorithm::DenseRabenseifner, &AllreduceConfig::default())
            .expect("allreduce");
    });
    println!("dense allreduce:  {:.3} ms virtual", t_dense * 1e3);
    println!("speedup from sparsity: {:.1}x", t_dense / t_sparse);
}
