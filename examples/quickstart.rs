//! Quickstart: sparse allreduce through a `Communicator` session.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Eight ranks each contribute a sparse gradient over a 10M-dimensional
//! space. The default `Algorithm::Auto` lets the §5.3 selector pick the
//! schedule; we then pin the dense baseline on the same (simulated)
//! Aries-class network for comparison.

use sparcml::core::{max_communicator_time, run_communicators, Algorithm};
use sparcml::net::CostModel;
use sparcml::stream::{random_sparse, SparseStream};

fn main() {
    let p = 8;
    let dim = 10_000_000;
    let nnz = 20_000; // 0.2% density per rank

    // Run the sparse allreduce: every rank gets the global sum. The
    // builder defaults to Algorithm::Auto — the adaptive selector.
    let results = run_communicators(p, CostModel::aries(), |comm| {
        let grad: SparseStream<f32> = random_sparse(dim, nnz, 42 + comm.rank() as u64);
        let sum = comm
            .allreduce(&grad)
            .launch()
            .and_then(|handle| handle.wait())
            .expect("allreduce");
        (sum.nnz(), comm.clock(), comm.stats().bytes_sent)
    });
    let (k_reduced, t_sparse, bytes) = results[0];
    println!("reduced support: {k_reduced} of {dim} coordinates");
    println!(
        "adaptive allreduce: {:.3} ms virtual, {} KiB sent per rank",
        t_sparse * 1e3,
        bytes / 1024
    );

    // Dense baseline for comparison: pin the algorithm explicitly.
    let t_dense = max_communicator_time(p, CostModel::aries(), |comm| {
        let grad: SparseStream<f32> = random_sparse(dim, nnz, 42 + comm.rank() as u64);
        comm.allreduce(&grad)
            .algorithm(Algorithm::DenseRabenseifner)
            .launch()
            .and_then(|handle| handle.wait())
            .expect("allreduce");
    });
    println!("dense allreduce:    {:.3} ms virtual", t_dense * 1e3);
    println!("speedup from sparsity: {:.1}x", t_dense / t_sparse);
}
