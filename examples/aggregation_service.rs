//! Self-launching aggregation-service demo.
//!
//! The parent process starts a two-shard aggregation server, then
//! re-executes this example once per client over loopback: three honest
//! clients stream sparse contributions, while a fourth goes dark halfway
//! through a frame — the half-open shape the idle watchdog exists for.
//! When every client process is done, the parent scrapes the health
//! endpoint and prints the lifecycle counters: the dead session is
//! *reaped*, the survivors *departed*, and the generation counter counts
//! every accepted contribution on both shards.
//!
//! ```console
//! cargo run --release --example aggregation_service
//! ```

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use sparcml::serve::launcher::{in_client_role, run_serve_clients, ClientLaunchOptions};
use sparcml::serve::protocol::{read_frame, Frame};
use sparcml::serve::{AggregationMode, ServeClient, ServeConfig, ShardGroup};
use sparcml::stream::random_sparse;

const DIM: usize = 1 << 16;
const ROUNDS: usize = 20;
const CLIENTS: usize = 4;

fn main() {
    // Client children re-enter main; only the parent runs the server.
    let group = if in_client_role() {
        None
    } else {
        let cfg = ServeConfig::default()
            .with_model("grad", DIM, AggregationMode::Sum)
            .with_idle_timeout(Duration::from_millis(400));
        Some(ShardGroup::start(cfg, 2).expect("start shard group"))
    };
    let addrs = group.as_ref().map(|g| g.addrs()).unwrap_or_default();

    let Some(outcomes) = run_serve_clients(
        "aggregation_service_example",
        CLIENTS,
        &addrs,
        &ClientLaunchOptions::default(),
        |client, addrs| {
            if client == CLIENTS - 1 {
                // The villain: handshake, half a frame, then silence.
                let mut socket = TcpStream::connect(addrs[0]).expect("connect shard 0");
                let mut buf = Vec::new();
                Frame::Hello {
                    session: format!("client-{client}"),
                }
                .encode_into(&mut buf);
                socket.write_all(&buf).expect("hello");
                read_frame(&mut socket, usize::MAX).expect("welcome");
                socket
                    .write_all(&[64, 0, 0, 0, 0x02, 1, 2])
                    .expect("half a frame");
                std::thread::sleep(Duration::from_secs(2));
                "went dark mid-frame".to_string()
            } else {
                let mut session =
                    ServeClient::connect(&format!("client-{client}"), addrs).expect("connect");
                let grad = random_sparse::<f32>(DIM, 256, 7700 + client as u64);
                let mut generation = 0;
                for _ in 0..ROUNDS {
                    generation = session
                        .contribute(0, &grad, Duration::from_secs(30))
                        .expect("contribute");
                }
                session.close();
                format!("contributed {ROUNDS} rounds, final generation {generation}")
            }
        },
    ) else {
        return; // client child: the parent prints the summary
    };
    let group = group.expect("parent holds the shard group");

    println!("aggregation service demo: {CLIENTS} client processes, 2 shards");
    for o in &outcomes {
        println!(
            "  client-{}: {}",
            o.client,
            o.result.as_deref().unwrap_or("<no result>")
        );
    }
    // Give the watchdog a beat to notice the villain, then report.
    let villain = format!("client-{}", CLIENTS - 1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while group.handles()[0].session_phase(&villain) != Some("reaped")
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    group.sync_now().expect("generation sync");
    println!("\nshard 0 health report:");
    for line in group.handles()[0].health_report().lines() {
        println!("  {line}");
    }
    group.shutdown();
}
