//! Topology & groups quickstart: `Communicator::split`, subgroup
//! collectives, and the two-level hierarchical allreduce.
//!
//! ```console
//! cargo run --example topology
//! ```
//!
//! Eight ranks on real threads, pinned to a 2×4 topology (two "nodes" of
//! four ranks). Each rank:
//!   1. splits the world communicator into its node group and allreduces
//!      within the group only,
//!   2. dissolves back to the world and runs the hierarchical allreduce
//!      (intra-node reduce → leader exchange → intra-node broadcast),
//!   3. prints what the topology-aware §5.3 selector would pick on a
//!      GigE-class cluster with shared-memory nodes.

use sparcml::net::run_thread_cluster;
use sparcml::{Algorithm, Communicator, Topology, TopologyCostModel, Transport};
use sparcml_core::select_algorithm_with_topology;
use sparcml_stream::SparseStream;

fn main() {
    let topo = Topology::uniform(2, 4).expect("2 nodes x 4 ranks");
    let topo_for_ranks = topo.clone();
    let results = run_thread_cluster(8, move |tp| {
        let comm = Communicator::new(tp.detach());
        let world_rank = comm.rank();
        let grad = SparseStream::from_pairs(
            1_000_000,
            &[(world_rank as u32 * 10, 1.0f32), (999_999, 0.5)],
        )
        .unwrap();

        // (1) Node-group collective: only the 4 ranks sharing this node
        // contribute. Tags are group-scoped, so both node groups run
        // their collectives concurrently without interfering.
        let mut node = comm.split_by_topology(&topo_for_ranks).unwrap();
        let node_sum = node
            .allreduce(&grad)
            .launch()
            .and_then(|h| h.wait())
            .unwrap();

        // (2) Back to the world: the hierarchical schedule composes the
        // same building blocks over the whole cluster.
        let mut comm = node.into_parent();
        let world_sum = comm
            .allreduce(&grad)
            .algorithm(Algorithm::Hierarchical)
            .topology(topo_for_ranks.clone())
            .launch()
            .and_then(|h| h.wait())
            .unwrap();
        *tp = comm.into_transport();
        (node_sum.get(999_999), world_sum.get(999_999))
    });

    for (rank, (node_sum, world_sum)) in results.iter().enumerate() {
        println!(
            "rank {rank} (node {}): node-group sum = {node_sum}, world hierarchical sum = {world_sum}",
            topo.node_of(rank)
        );
        assert_eq!(*node_sum, 2.0); // 4 ranks x 0.5
        assert_eq!(*world_sum, 4.0); // 8 ranks x 0.5
    }

    // (3) What would the selector do on a real cluster shape?
    let tcm = TopologyCostModel::gige_cluster();
    let pick = select_algorithm_with_topology::<f32>(&topo, 1 << 20, 100, &tcm);
    println!(
        "selector on a GigE cluster (N=2^20, k=100): {}",
        pick.name()
    );
}
