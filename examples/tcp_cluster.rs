//! Multi-process sparse allreduce over real TCP sockets.
//!
//! Run the self-launching demo (the parent re-executes this example once
//! per rank over loopback):
//!
//! ```console
//! cargo run --release --example tcp_cluster          # 4 ranks
//! cargo run --release --example tcp_cluster -- 6     # 6 ranks
//! ```
//!
//! Or launch ranks by hand (e.g. across machines) with the environment
//! bootstrap — rank 0's address is the rendezvous point:
//!
//! ```console
//! # machine A (rank 0, also the rendezvous root):
//! SPARCML_RANK=0 SPARCML_WORLD=2 SPARCML_ROOT_ADDR=10.0.0.1:7077 \
//!     cargo run --release --example tcp_cluster
//! # machine B:
//! SPARCML_RANK=1 SPARCML_WORLD=2 SPARCML_ROOT_ADDR=10.0.0.1:7077 \
//!     cargo run --release --example tcp_cluster
//! ```

use sparcml::net::{run_tcp_cluster, LaunchOptions, TcpTransport};
use sparcml::stream::random_sparse;
use sparcml::{Communicator, Transport};

/// The per-rank program: one adaptive sparse allreduce.
fn rank_program(tp: &mut TcpTransport) -> String {
    let mut comm = Communicator::new(tp.detach());
    let (rank, size) = (comm.rank(), comm.size());
    let grad = random_sparse::<f32>(1 << 20, 4096, 1234 + rank as u64);
    let sum = comm
        .allreduce(&grad) // Algorithm::Auto — the §5.3 selector
        .launch()
        .and_then(|h| h.wait())
        .expect("allreduce over TCP");
    let mut line = format!(
        "rank {rank}/{size}: |union| = {} nnz, {:.1} ms wall",
        sum.nnz(),
        comm.clock() * 1e3,
    );
    if rank == 0 {
        // One rank prints the full counter block in the stable
        // `CommStats::render_text` format (same shape the serve health
        // endpoint and bench bins emit).
        line.push_str("\n  rank 0 transport counters:");
        for counter in comm.stats_report().lines() {
            line.push_str("\n    ");
            line.push_str(counter);
        }
    }
    *tp = comm.into_transport();
    line
}

fn main() {
    // Manual launch: the bootstrap env is set but no launcher job marker —
    // this process *is* one rank of a hand-assembled cluster.
    if std::env::var("SPARCML_RANK").is_ok() && std::env::var("SPARCML_JOB").is_err() {
        let mut tp = TcpTransport::from_env().expect("join cluster from SPARCML_* env");
        println!("{}", rank_program(&mut tp));
        return;
    }

    // Self-launching demo: spawn `world` rank subprocesses of this very
    // binary over loopback and gather their reports.
    let world: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("world size must be an integer"))
        .unwrap_or(4);
    let Some(reports) = run_tcp_cluster(
        "tcp_cluster_example",
        world,
        &LaunchOptions::default(),
        rank_program,
    ) else {
        return; // worker rank: the parent prints the summary
    };
    println!("sparse allreduce across {world} OS processes over loopback TCP:");
    for line in reports {
        println!("  {line}");
    }
}
